//! Distributed-tracing acceptance: a traced `Explain` through the
//! gateway over three real in-process shards — including one forced
//! failover re-route — assembles into a single cross-process trace.
//!
//! The acceptance properties from ISSUE 10:
//!
//! * the assembled trace holds the gateway's routing spans *and* the
//!   serving backend's extraction/optimize spans under one trace id,
//!   with the failover hop visible as its own span;
//! * the Chrome trace-event export round-trips a JSON parser check;
//! * `Trace` through the gateway resolves a global id to the owning
//!   shard, and an id nobody retains is a typed `UnknownTrace` error.

#![allow(clippy::unwrap_used)]

use std::time::Duration;

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_gateway::{route_key, Gateway, GatewayConfig, Ring};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::RuntimeConfig;
use revelio_server::wire::ErrorKind;
use revelio_server::{Client, ClientError, ExplainRequest, Server, ServerConfig};
use revelio_trace::validate_json;

fn trained_model() -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..4)
        .map(|variant| {
            let mut b = Graph::builder(5, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4);
            for v in 0..5 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.3]);
            }
            b.node_labels((0..5).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn start_backend() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        runtime: RuntimeConfig {
            workers: 1,
            seed: 42,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("backend starts")
}

fn explain_request(model: u32, graph: &Graph, graph_id: u64, target: Target) -> ExplainRequest {
    ExplainRequest {
        model,
        graph_id,
        method: "REVELIO".to_owned(),
        objective: Objective::Factual,
        effort: Effort::Quick,
        target,
        control: ControlSpec::default(),
        graph: graph.clone(),
        context: None,
    }
}

/// The full acceptance path: 3 shards, sampling on, kill the owner of a
/// chosen key so the traced request re-routes mid-flight, then assemble.
#[test]
fn traced_explain_with_failover_assembles_one_cross_process_trace() {
    let (model, graphs) = trained_model();

    let mut servers: Vec<Option<Server>> = (0..3).map(|_| Some(start_backend())).collect();
    let shards: Vec<String> = servers
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr().to_string())
        .collect();
    // Sampling on for every request; health polling slowed to a crawl so
    // a freshly killed shard still *looks* healthy and the re-route
    // happens inside the traced forward loop, not via the health mask.
    let cfg = GatewayConfig {
        shards,
        trace_sample_rate: 1.0,
        health_interval: Duration::from_secs(3600),
        fail_after: 1000,
        ..GatewayConfig::default()
    };
    let vnodes = cfg.vnodes;
    let gateway = Gateway::start(cfg).expect("gateway starts");
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let id = client.register_model(&model).unwrap();

    // Predict routing with an identical ring and kill the owner of the
    // key we are about to explain.
    let ring = Ring::new(3, vnodes);
    let (gid, target) = (0, Target::Node(2));
    let victim = ring
        .owner(route_key(id, gid, target), &[true, true, true])
        .unwrap();
    let successor = ring
        .owner(route_key(id, gid, target), &{
            let mut alive = [true, true, true];
            alive[victim] = false;
            alive
        })
        .unwrap();
    servers[victim].take().unwrap().shutdown();

    // The traced request: first attempt hits the dead owner, fails at the
    // transport, and re-routes to the ring successor.
    let req = explain_request(id, &graphs[gid as usize], gid, target);
    let served = client
        .explain_with_retry(&req)
        .expect("explain survives failover");
    let trace_lo = served
        .trace_id
        .expect("sampled explain echoes its trace id");

    // Fetch the assembled trace by the echoed id through the gateway.
    let assembled = client
        .assembled_trace(0, trace_lo)
        .expect("gateway assembles the trace");
    assert_eq!(assembled.trace_lo, trace_lo, "assembly keyed by trace id");
    assert!(assembled.trace_hi != 0, "gateway minted a 128-bit id");

    // Lane 0 is the gateway, lane 1 the shard that actually served it.
    assert!(
        assembled.lanes.len() >= 2,
        "expected gateway + backend lanes, got {:?}",
        assembled.lanes
    );
    assert_eq!(assembled.lanes[0], "gateway");
    assert!(
        assembled.lanes[1].starts_with(&format!("shard-{successor}")),
        "backend lane should be the ring successor: {:?}",
        assembled.lanes
    );

    let names: Vec<&str> = assembled.spans.iter().map(|s| s.name.as_str()).collect();
    // Gateway routing spans.
    assert!(names.contains(&"route"), "missing route span: {names:?}");
    let failover = format!("failover-hop shard-{victim}");
    assert!(
        names.iter().any(|n| *n == failover),
        "missing {failover:?}: {names:?}"
    );
    assert!(
        names
            .iter()
            .any(|n| *n == format!("forward shard-{successor}")),
        "missing forward span: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("checkout shard-")),
        "missing checkout span: {names:?}"
    );
    // Backend phase spans, in the backend lane.
    let backend_lane = 1u32;
    for phase in ["extraction", "optimize"] {
        assert!(
            assembled
                .spans
                .iter()
                .any(|s| s.lane == backend_lane && s.name == phase),
            "missing backend {phase} span: {names:?}"
        );
    }

    // The Chrome export is valid JSON and mentions every lane.
    let chrome = assembled.chrome_trace_json();
    if let Err(e) = validate_json(&chrome) {
        panic!("chrome trace JSON failed the parser check ({e}):\n{chrome}");
    }
    assert!(chrome.contains(&assembled.hex_id()));
    for lane in &assembled.lanes {
        assert!(chrome.contains(lane.as_str()), "lane {lane} not exported");
    }

    // Satellite: `Trace` through the gateway resolves the global id to
    // the owning shard's captured trace.
    let raw = client.trace(trace_lo).expect("scatter trace succeeds");
    let raw = raw.expect("owning shard retains the trace");
    assert!(
        !raw.events.is_empty(),
        "owning shard's trace should carry events"
    );

    for s in servers.iter_mut().filter_map(Option::take) {
        s.stop();
    }
    gateway.shutdown();
}

/// An id nobody retains is a typed `UnknownTrace` — both for assembly
/// (gateway window miss) and for `Trace` scatter (fleet-wide miss).
#[test]
fn unknown_trace_ids_are_typed_errors() {
    let (model, _graphs) = trained_model();
    let servers: Vec<Server> = (0..2).map(|_| start_backend()).collect();
    let gateway = Gateway::start(GatewayConfig {
        shards: servers.iter().map(|s| s.local_addr().to_string()).collect(),
        ..GatewayConfig::default()
    })
    .expect("gateway starts");
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    client.register_model(&model).unwrap();

    match client.assembled_trace(0, 0xdead_beef) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownTrace),
        other => panic!("expected UnknownTrace assembling, got {other:?}"),
    }
    match client.trace(0xdead_beef) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownTrace),
        other => panic!("expected UnknownTrace scattering, got {other:?}"),
    }

    for s in &servers {
        s.stop();
    }
    gateway.shutdown();
}
