//! Error-kind fidelity through the gateway: a `Busy` answer from a
//! backend is backpressure, not a transport failure — the gateway must
//! hand it to the caller verbatim instead of re-routing or retrying it
//! into oblivion, and must not count it against the backend's health.

#![allow(clippy::unwrap_used)]

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_gateway::{Gateway, GatewayConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task};
use revelio_graph::{Graph, Target};
use revelio_server::wire::{read_frame, write_frame, Request, Response, ServerStats};
use revelio_server::{Client, ClientError, ExplainRequest, PROTOCOL_VERSION};

/// A minimal wire-speaking backend that answers every `Explain` with
/// `Busy` while behaving normally for registration and health polls.
fn spawn_busy_backend() -> (std::net::SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    listener.set_nonblocking(true).unwrap();
    std::thread::spawn(move || {
        while !stop_accept.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let stop_conn = Arc::clone(&stop_accept);
                    std::thread::spawn(move || {
                        stream
                            .set_read_timeout(Some(Duration::from_millis(50)))
                            .unwrap();
                        loop {
                            if stop_conn.load(Ordering::Acquire) {
                                return;
                            }
                            let payload = match read_frame(&mut stream, 1 << 24) {
                                Ok(Some((payload, _))) => payload,
                                Ok(None) => return,
                                Err(e) => {
                                    if is_poll_timeout(&e) {
                                        continue;
                                    }
                                    return;
                                }
                            };
                            let resp = match Request::decode(&payload) {
                                Ok(Request::Ping) => Response::Pong {
                                    version: PROTOCOL_VERSION,
                                },
                                Ok(Request::RegisterModel { .. }) => {
                                    Response::ModelRegistered { model: 0 }
                                }
                                Ok(Request::Stats) => {
                                    Response::Stats(Box::<ServerStats>::default(), None)
                                }
                                Ok(Request::Explain(_)) => Response::Busy {
                                    in_flight: 7,
                                    limit: 7,
                                },
                                _ => return,
                            };
                            if write_frame(&mut stream, &resp.encode(), 1 << 24).is_err() {
                                return;
                            }
                            let _ = stream.flush();
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return,
            }
        }
    });
    (addr, stop)
}

fn is_poll_timeout(e: &revelio_server::WireError) -> bool {
    matches!(
        e,
        revelio_server::WireError::Io(io)
            if io.kind() == std::io::ErrorKind::WouldBlock
                || io.kind() == std::io::ErrorKind::TimedOut
    )
}

#[test]
fn busy_from_a_backend_propagates_as_busy_without_gateway_retries() {
    let (addr, stop) = spawn_busy_backend();
    let gateway = Gateway::start(GatewayConfig {
        shards: vec![addr.to_string()],
        health_interval: Duration::from_millis(100),
        ..GatewayConfig::default()
    })
    .unwrap();

    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 1,
        hidden_dim: 4,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 1,
    });
    let id = client.register_model(&model).unwrap();

    let mut b = Graph::builder(2, 1);
    b.undirected_edge(0, 1);
    b.node_features(0, &[1.0]);
    b.node_features(1, &[1.0]);
    b.node_labels(vec![0, 1]);
    let graph = b.build();

    let req = ExplainRequest {
        model: id,
        graph_id: 0,
        method: "REVELIO".to_owned(),
        objective: Objective::Factual,
        effort: Effort::Quick,
        target: Target::Node(0),
        control: ControlSpec::default(),
        graph,
        context: None,
    };

    // `Client::explain` does not retry Busy — if the gateway looped on it
    // internally this would hang until the 120s read timeout instead of
    // answering promptly.
    let t0 = Instant::now();
    let result = client.explain(&req);
    let elapsed = t0.elapsed();
    match result {
        Err(ClientError::Busy { in_flight, limit }) => {
            assert_eq!((in_flight, limit), (7, 7), "Busy payload must be verbatim");
        }
        other => panic!("expected Busy to propagate, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "Busy took {elapsed:?} — the gateway must not retry backpressure"
    );

    // Busy is an answer: the backend stays healthy and the shed is
    // accounted on its busy counter, not its error counter.
    let stats = gateway.gateway_stats();
    assert!(stats.backends[0].healthy);
    assert_eq!(stats.backends[0].busy, 1);
    assert_eq!(stats.backends[0].errors, 0);

    stop.store(true, Ordering::Release);
    gateway.shutdown();
}
