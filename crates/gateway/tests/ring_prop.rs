//! Property tests for the consistent-hash ring: the defining guarantee
//! of consistent hashing is *minimal disruption* — changing the shard set
//! only moves keys that belong to the changed shard.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use revelio_gateway::{route_key, Ring};
use revelio_graph::Target;

proptest! {
    /// Routing is a pure function of (key, alive set).
    #[test]
    fn owner_is_deterministic(
        shards in 1usize..6,
        vnodes in 1usize..48,
        keys in prop::collection::vec((0u32..4, 0u64..1000, 0u64..50), 1..40),
    ) {
        let ring = Ring::new(shards, vnodes);
        let alive = vec![true; shards];
        for &(model, graph, node) in &keys {
            let key = route_key(model, graph, Target::Node(node as usize));
            let a = ring.owner(key, &alive);
            let b = ring.owner(key, &alive);
            prop_assert_eq!(a, b);
            prop_assert!(a.unwrap() < shards);
        }
    }

    /// Killing one shard moves exactly its keys — every key owned by a
    /// live shard keeps its owner, and every key of the dead shard lands
    /// on some other live shard.
    #[test]
    fn removing_a_shard_only_moves_its_keys(
        shards in 2usize..6,
        vnodes in 1usize..48,
        dead in 0usize..6,
        keys in prop::collection::vec((0u32..4, 0u64..1000, 0u64..50), 1..60),
    ) {
        let dead = dead % shards;
        let ring = Ring::new(shards, vnodes);
        let all = vec![true; shards];
        let mut without = all.clone();
        without[dead] = false;
        for &(model, graph, node) in &keys {
            let key = route_key(model, graph, Target::Node(node as usize));
            let before = ring.owner(key, &all).unwrap();
            let after = ring.owner(key, &without).unwrap();
            if before == dead {
                prop_assert!(after != dead);
            } else {
                prop_assert_eq!(after, before);
            }
        }
    }

    /// Growing the fleet by one shard only *steals* keys: any key whose
    /// owner changes must now be owned by the new shard. (Shard points
    /// are hashed from the shard index, so the first `n` shards place
    /// identical points in both rings.)
    #[test]
    fn adding_a_shard_only_steals_keys(
        shards in 1usize..5,
        vnodes in 1usize..48,
        keys in prop::collection::vec((0u32..4, 0u64..1000, 0u64..50), 1..60),
    ) {
        let small = Ring::new(shards, vnodes);
        let big = Ring::new(shards + 1, vnodes);
        let small_alive = vec![true; shards];
        let big_alive = vec![true; shards + 1];
        for &(model, graph, node) in &keys {
            let key = route_key(model, graph, Target::Node(node as usize));
            let before = small.owner(key, &small_alive).unwrap();
            let after = big.owner(key, &big_alive).unwrap();
            if after != before {
                prop_assert_eq!(after, shards, "a moved key must move to the new shard");
            }
        }
    }

    /// Failover is deterministic: with the dead shard excluded, the
    /// successor is a pure function of the key — computed identically by
    /// any gateway instance over the same shard list.
    #[test]
    fn failover_successor_is_deterministic(
        shards in 2usize..6,
        vnodes in 1usize..48,
        dead in 0usize..6,
        key in 0u64..u64::MAX,
    ) {
        let dead = dead % shards;
        let a = Ring::new(shards, vnodes);
        let b = Ring::new(shards, vnodes);
        let mut alive = vec![true; shards];
        alive[dead] = false;
        prop_assert_eq!(a.owner(key, &alive), b.owner(key, &alive));
    }
}
