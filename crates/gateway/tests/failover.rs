//! End-to-end gateway tests over real in-process backends: locality
//! parity, failover, and recovery with registration replay.
//!
//! The acceptance properties from ISSUE 9:
//!
//! * artifact-cache hit-rate under gateway routing is within 5% of
//!   single-backend routing for a repeated-key workload;
//! * after one shard dies, all subsequent requests succeed and the dead
//!   shard's keys are served by exactly its deterministic ring successor;
//! * a recovered shard is re-admitted with the registration log replayed.

#![allow(clippy::unwrap_used)]

use std::time::{Duration, Instant};

use revelio_core::wire::ControlSpec;
use revelio_core::Objective;
use revelio_eval::Effort;
use revelio_gateway::{route_key, Gateway, GatewayConfig, Ring};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::RuntimeConfig;
use revelio_server::{Client, ExplainRequest, Server, ServerConfig};

/// A small trained model and a family of path graphs to explain.
fn trained_model() -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..4)
        .map(|variant| {
            let mut b = Graph::builder(5, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4);
            if variant % 2 == 1 {
                b.undirected_edge(0, 2);
            }
            for v in 0..5 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.3]);
            }
            b.node_labels((0..5).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn start_backend(addr: &str) -> Server {
    Server::start(ServerConfig {
        addr: addr.to_owned(),
        runtime: RuntimeConfig {
            workers: 1,
            seed: 42,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("backend starts")
}

fn start_gateway(shards: Vec<String>) -> Gateway {
    Gateway::start(GatewayConfig {
        shards,
        health_interval: Duration::from_millis(100),
        fail_after: 2,
        ..GatewayConfig::default()
    })
    .expect("gateway starts")
}

fn explain_request(model: u32, graph: &Graph, graph_id: u64, target: Target) -> ExplainRequest {
    ExplainRequest {
        model,
        graph_id,
        method: "REVELIO".to_owned(),
        objective: Objective::Factual,
        effort: Effort::Quick,
        target,
        control: ControlSpec::default(),
        graph: graph.clone(),
        context: None,
    }
}

/// The repeated-key workload: every `(graph_id, target)` pair.
fn workload_keys(graphs: &[Graph]) -> Vec<(u64, Target)> {
    let mut keys = Vec::new();
    for gid in 0..graphs.len() as u64 {
        for v in 0..5 {
            keys.push((gid, Target::Node(v)));
        }
    }
    keys
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Consistent-hash routing preserves the artifact-cache hit rate a single
/// backend would see: every repeat of a key lands on the shard that
/// already holds its artifacts.
#[test]
fn gateway_cache_hit_rate_matches_single_backend_within_5_percent() {
    let (model, graphs) = trained_model();
    let keys = workload_keys(&graphs);
    const REPEATS: usize = 3;

    // Direct: one backend, no gateway.
    let direct_rate = {
        let server = start_backend("127.0.0.1:0");
        let mut client = Client::connect(server.local_addr()).unwrap();
        let id = client.register_model(&model).unwrap();
        for _ in 0..REPEATS {
            for &(gid, target) in &keys {
                let req = explain_request(id, &graphs[gid as usize], gid, target);
                client.explain_with_retry(&req).unwrap();
            }
        }
        let stats = client.stats().unwrap();
        server.shutdown();
        hit_rate(stats.runtime.cache_hits, stats.runtime.cache_misses)
    };

    // Gateway over three shards, same workload.
    let (gateway_rate, fleet_rate) = {
        let servers: Vec<Server> = (0..3).map(|_| start_backend("127.0.0.1:0")).collect();
        let shards: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        let gateway = start_gateway(shards);
        let mut client = Client::connect(gateway.local_addr()).unwrap();
        let id = client.register_model(&model).unwrap();
        for _ in 0..REPEATS {
            for &(gid, target) in &keys {
                let req = explain_request(id, &graphs[gid as usize], gid, target);
                client.explain_with_retry(&req).unwrap();
            }
        }
        let (merged, tail) = client.stats_full().unwrap();
        let tail = tail.expect("gateway stats tail");
        for s in &servers {
            s.stop();
        }
        gateway.shutdown();
        (
            hit_rate(merged.runtime.cache_hits, merged.runtime.cache_misses),
            tail.fleet_cache_hit_rate(),
        )
    };

    assert!(
        direct_rate > 0.5,
        "repeated-key workload should mostly hit ({direct_rate})"
    );
    assert!(
        (direct_rate - gateway_rate).abs() <= 0.05,
        "gateway hit rate {gateway_rate} strays from direct {direct_rate}"
    );
    // The tail's rollup (computed from health-poll counters) agrees with
    // the live merged snapshot.
    assert!(
        (fleet_rate - gateway_rate).abs() <= 0.05,
        "fleet rollup {fleet_rate} strays from merged {gateway_rate}"
    );
}

/// Kill one shard mid-workload: every subsequent request still succeeds,
/// the dead shard's keys are served by exactly the ring successor, live
/// shards' keys never move, and the gateway marks the victim down.
#[test]
fn failover_reroutes_dead_shards_keys_to_the_ring_successor() {
    let (model, graphs) = trained_model();
    let keys = workload_keys(&graphs);

    let mut servers: Vec<Option<Server>> =
        (0..3).map(|_| Some(start_backend("127.0.0.1:0"))).collect();
    let shards: Vec<String> = servers
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr().to_string())
        .collect();
    let cfg_vnodes = GatewayConfig::default().vnodes;
    let gateway = start_gateway(shards);
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let id = client.register_model(&model).unwrap();

    // The test computes routing with its own ring — identical inputs,
    // identical ring — to predict where every key lands.
    let ring = Ring::new(3, cfg_vnodes);
    let all_alive = [true, true, true];
    let owner_of = |gid: u64, target: Target, alive: &[bool]| {
        ring.owner(route_key(id, gid, target), alive).unwrap()
    };

    // Pass 1: every key once; forwarded counters must match the ring.
    for &(gid, target) in &keys {
        let req = explain_request(id, &graphs[gid as usize], gid, target);
        client.explain_with_retry(&req).unwrap();
    }
    let mut expected_pass1 = [0u64; 3];
    for &(gid, target) in &keys {
        expected_pass1[owner_of(gid, target, &all_alive)] += 1;
    }
    let after_pass1 = gateway.gateway_stats();
    for (shard, b) in after_pass1.backends.iter().enumerate() {
        assert_eq!(
            b.forwarded, expected_pass1[shard],
            "pass 1: shard {shard} served an unexpected number of keys"
        );
    }

    // Kill the shard that owns the most keys (certainly at least one).
    let victim = (0..3).max_by_key(|&s| expected_pass1[s]).unwrap();
    assert!(expected_pass1[victim] >= 2, "victim owns too few keys");
    servers[victim].take().unwrap().shutdown();
    let mut alive_after = [true, true, true];
    alive_after[victim] = false;

    // Pass 2: every key again; all must succeed despite the dead shard.
    for &(gid, target) in &keys {
        let req = explain_request(id, &graphs[gid as usize], gid, target);
        client
            .explain_with_retry(&req)
            .expect("request lost during failover");
    }

    // The victim served nothing new; every key's pass-2 owner is the
    // deterministic ring choice with the victim excluded, so per-shard
    // forwarded deltas equal the recomputed distribution exactly (the
    // moved keys land on exactly one successor each).
    let mut expected_pass2 = [0u64; 3];
    for &(gid, target) in &keys {
        expected_pass2[owner_of(gid, target, &alive_after)] += 1;
    }
    assert_eq!(expected_pass2[victim], 0);
    let after_pass2 = gateway.gateway_stats();
    for (shard, b) in after_pass2.backends.iter().enumerate() {
        assert_eq!(
            b.forwarded - after_pass1.backends[shard].forwarded,
            expected_pass2[shard],
            "pass 2: shard {shard} served an unexpected number of keys"
        );
    }
    // Sanity: some keys actually moved (the victim owned the most).
    assert!(expected_pass1[victim] > 0);

    // The victim accumulated consecutive transport failures and is
    // marked down (fail_after = 2, and it owned >= 2 keys).
    assert!(
        !after_pass2.backends[victim].healthy,
        "victim should be marked unhealthy after repeated failures"
    );
    assert_eq!(after_pass2.healthy_backends(), 2);

    for s in servers.iter_mut().filter_map(Option::take) {
        s.stop();
    }
    gateway.shutdown();
}

/// A shard that comes back is re-admitted: the gateway replays the
/// registration log into the fresh process and routes its keys home
/// again.
#[test]
fn recovered_shard_is_readmitted_with_registrations_replayed() {
    let (model, graphs) = trained_model();

    let mut servers: Vec<Option<Server>> =
        (0..2).map(|_| Some(start_backend("127.0.0.1:0"))).collect();
    let shards: Vec<String> = servers
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr().to_string())
        .collect();
    let cfg_vnodes = GatewayConfig::default().vnodes;
    let gateway = start_gateway(shards.clone());
    let mut client = Client::connect(gateway.local_addr()).unwrap();
    let id = client.register_model(&model).unwrap();

    // Find a key owned by shard 0.
    let ring = Ring::new(2, cfg_vnodes);
    let (gid, target) = (0..graphs.len() as u64)
        .flat_map(|g| (0..5).map(move |v| (g, Target::Node(v))))
        .find(|&(g, t)| ring.owner(route_key(id, g, t), &[true, true]) == Some(0))
        .expect("some key lands on shard 0");
    let req = explain_request(id, &graphs[gid as usize], gid, target);
    let baseline = client.explain_with_retry(&req).unwrap();

    // Kill shard 0 and wait until the gateway notices (health polls every
    // 100ms; fail_after is 2).
    servers[0].take().unwrap().shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while gateway.gateway_stats().backends[0].healthy {
        assert!(
            Instant::now() < deadline,
            "gateway never marked shard 0 down"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Its keys are served by the survivor meanwhile.
    client.explain_with_retry(&req).unwrap();

    // Restart a fresh, empty backend on the same port. The old process
    // may leave the port in TIME_WAIT briefly; retry the bind.
    let restarted = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Server::start(ServerConfig {
                addr: shards[0].clone(),
                runtime: RuntimeConfig {
                    workers: 1,
                    seed: 42,
                    ..Default::default()
                },
                ..Default::default()
            }) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(
                        Instant::now() < deadline,
                        "could not rebind shard 0's port: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    };

    // The gateway re-admits it after a successful poll + replay.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !gateway.gateway_stats().backends[0].healthy {
        assert!(Instant::now() < deadline, "shard 0 was never re-admitted");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Its keys route home again — which only works if the registration
    // was replayed into the fresh process — and the answer matches the
    // pre-failure one bit for bit (same seed, same submission stream
    // shape: first explain of this key on a cold runtime).
    let before = gateway.gateway_stats().backends[0].forwarded;
    let again = client.explain_with_retry(&req).unwrap();
    let after = gateway.gateway_stats().backends[0].forwarded;
    assert_eq!(after, before + 1, "key did not route back to shard 0");
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&again.edge_scores), bits(&baseline.edge_scores));

    restarted.stop();
    for s in servers.iter_mut().filter_map(Option::take) {
        s.stop();
    }
    gateway.shutdown();
}
