//! The explanation-method registry used by every harness binary.

use revelio_baselines::{
    DeepLift, FlowX, FlowXConfig, GnnExplainer, GnnExplainerConfig, GnnLrp, GradCam, GraphMask,
    GraphMaskConfig, PgExplainer, PgExplainerConfig, PgmExplainer, PgmExplainerConfig, SubgraphX,
    SubgraphXConfig,
};
use revelio_core::{Explainer, Objective, Revelio, RevelioConfig};

/// Compute budget for learning-based methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced epochs / samples for fast CI-style runs.
    Quick,
    /// The paper's settings (500 epochs for GNNExplainer / PGExplainer /
    /// REVELIO, 200 for GraphMask, full sampling for FlowX).
    Paper,
}

/// Every method of §V-A, in the paper's table order.
pub const ALL_METHODS: [&str; 10] = [
    "GradCAM",
    "DeepLIFT",
    "GNNExplainer",
    "PGExplainer",
    "GraphMask",
    "PGMExplainer",
    "SubgraphX",
    "GNN-LRP",
    "FlowX",
    "REVELIO",
];

/// The flow-based methods (Tables VI–VII).
pub const FLOW_METHODS: [&str; 3] = ["GNN-LRP", "FlowX", "REVELIO"];

/// Instantiates a method by its paper name.
///
/// `objective` selects the factual or counterfactual variant for the
/// learning-based methods; methods without a counterfactual mode (GradCAM,
/// DeepLIFT, PGMExplainer, SubgraphX, GNN-LRP) reuse their original
/// explanations, exactly as in the paper's Fig. 4 protocol.
///
/// # Panics
///
/// Panics on an unknown method name.
pub fn make_method(
    name: &str,
    objective: Objective,
    effort: Effort,
    seed: u64,
) -> Box<dyn Explainer> {
    let quick = effort == Effort::Quick;
    match name {
        "GradCAM" => Box::new(GradCam),
        "DeepLIFT" => Box::new(DeepLift),
        "GNNExplainer" => Box::new(GnnExplainer::new(GnnExplainerConfig {
            epochs: if quick { 100 } else { 500 },
            objective,
            seed,
            ..Default::default()
        })),
        "PGExplainer" => Box::new(PgExplainer::new(PgExplainerConfig {
            epochs: if quick { 10 } else { 500 },
            objective,
            seed,
            ..Default::default()
        })),
        "GraphMask" => Box::new(GraphMask::new(GraphMaskConfig {
            epochs: if quick { 10 } else { 200 },
            objective,
            seed,
            ..Default::default()
        })),
        "PGMExplainer" => Box::new(PgmExplainer::new(PgmExplainerConfig {
            samples: if quick { 40 } else { 100 },
            seed,
            ..Default::default()
        })),
        "SubgraphX" => Box::new(SubgraphX::new(SubgraphXConfig {
            rollouts: if quick { 10 } else { 30 },
            seed,
            ..Default::default()
        })),
        "GNN-LRP" => Box::new(GnnLrp::default()),
        "FlowX" => Box::new(FlowX::new(FlowXConfig {
            samples: if quick { 10 } else { 25 },
            epochs: if quick { 30 } else { 100 },
            objective,
            seed,
            ..Default::default()
        })),
        "REVELIO" => Box::new(Revelio::new(RevelioConfig {
            epochs: if quick { 100 } else { 500 },
            objective,
            seed,
            ..Default::default()
        })),
        other => panic!("unknown method {other:?} (expected one of {ALL_METHODS:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_method_instantiates() {
        for name in ALL_METHODS {
            let m = make_method(name, Objective::Factual, Effort::Quick, 0);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn counterfactual_variants_instantiate() {
        for name in ALL_METHODS {
            let m = make_method(name, Objective::Counterfactual, Effort::Quick, 0);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics() {
        let _ = make_method("Oracle", Objective::Factual, Effort::Quick, 0);
    }
}
