//! The explanation-method registry used by every harness binary.

use revelio_baselines::{
    DeepLift, FlowX, FlowXConfig, GnnExplainer, GnnExplainerConfig, GnnLrp, GradCam, GraphMask,
    GraphMaskConfig, PgExplainer, PgExplainerConfig, PgmExplainer, PgmExplainerConfig, SubgraphX,
    SubgraphXConfig,
};
use revelio_core::{Explainer, Objective, Revelio, RevelioConfig};

/// Compute budget for learning-based methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced epochs / samples for fast CI-style runs.
    Quick,
    /// The paper's settings (500 epochs for GNNExplainer / PGExplainer /
    /// REVELIO, 200 for GraphMask, full sampling for FlowX).
    Paper,
}

/// Every method of §V-A, in the paper's table order.
pub const ALL_METHODS: [&str; 10] = [
    "GradCAM",
    "DeepLIFT",
    "GNNExplainer",
    "PGExplainer",
    "GraphMask",
    "PGMExplainer",
    "SubgraphX",
    "GNN-LRP",
    "FlowX",
    "REVELIO",
];

/// The flow-based methods (Tables VI–VII).
pub const FLOW_METHODS: [&str; 3] = ["GNN-LRP", "FlowX", "REVELIO"];

/// Methods that train a shared network over the whole instance set via
/// [`Explainer::fit`]. Their fit state lives in `RefCell`s, so they cannot
/// cross threads: the harness serves them on its serial path instead of the
/// worker pool.
pub const GROUP_LEVEL_METHODS: [&str; 2] = ["PGExplainer", "GraphMask"];

/// Whether `name` is a group-level method (see [`GROUP_LEVEL_METHODS`]).
pub fn is_group_level(name: &str) -> bool {
    GROUP_LEVEL_METHODS.contains(&name)
}

/// Whether `name` enumerates message flows (and so benefits from the
/// runtime's shared flow-index cache).
pub fn is_flow_based(name: &str) -> bool {
    FLOW_METHODS.contains(&name)
}

/// The flow cap shared by instance sampling and runtime flow-index
/// preparation. Using one value keeps the artifact-cache keys aligned, so
/// an index warmed at sampling time is a hit at explain time.
pub fn flow_cap(effort: Effort) -> usize {
    match effort {
        Effort::Quick => 60_000,
        Effort::Paper => 300_000,
    }
}

/// A `Send` explainer factory for the serving runtime: the worker thread
/// builds the method from the job's derived seed, which is what makes
/// results independent of scheduling.
pub fn method_factory(
    name: &'static str,
    objective: Objective,
    effort: Effort,
) -> Box<dyn Fn(u64) -> Box<dyn Explainer> + Send> {
    Box::new(move |seed| make_method(name, objective, effort, seed))
}

/// Instantiates a method by its paper name.
///
/// `objective` selects the factual or counterfactual variant for the
/// learning-based methods; methods without a counterfactual mode (GradCAM,
/// DeepLIFT, PGMExplainer, SubgraphX, GNN-LRP) reuse their original
/// explanations, exactly as in the paper's Fig. 4 protocol.
///
/// # Panics
///
/// Panics on an unknown method name.
pub fn make_method(
    name: &str,
    objective: Objective,
    effort: Effort,
    seed: u64,
) -> Box<dyn Explainer> {
    let quick = effort == Effort::Quick;
    match name {
        "GradCAM" => Box::new(GradCam),
        "DeepLIFT" => Box::new(DeepLift),
        "GNNExplainer" => Box::new(GnnExplainer::new(GnnExplainerConfig {
            epochs: if quick { 100 } else { 500 },
            objective,
            seed,
            ..Default::default()
        })),
        "PGExplainer" => Box::new(PgExplainer::new(PgExplainerConfig {
            epochs: if quick { 10 } else { 500 },
            objective,
            seed,
            ..Default::default()
        })),
        "GraphMask" => Box::new(GraphMask::new(GraphMaskConfig {
            epochs: if quick { 10 } else { 200 },
            objective,
            seed,
            ..Default::default()
        })),
        "PGMExplainer" => Box::new(PgmExplainer::new(PgmExplainerConfig {
            samples: if quick { 40 } else { 100 },
            seed,
            ..Default::default()
        })),
        "SubgraphX" => Box::new(SubgraphX::new(SubgraphXConfig {
            rollouts: if quick { 10 } else { 30 },
            seed,
            ..Default::default()
        })),
        "GNN-LRP" => Box::new(GnnLrp::default()),
        "FlowX" => Box::new(FlowX::new(FlowXConfig {
            samples: if quick { 10 } else { 25 },
            epochs: if quick { 30 } else { 100 },
            objective,
            seed,
            ..Default::default()
        })),
        "REVELIO" => Box::new(Revelio::new(RevelioConfig {
            seed,
            ..revelio_batch_config(objective, effort)
        })),
        other => panic!("unknown method {other:?} (expected one of {ALL_METHODS:?})"),
    }
}

/// The REVELIO config [`make_method`] serves, with `seed` left at its
/// default. Runtime callers hand this to `ExplainJob::with_batch_spec` so
/// queued REVELIO jobs can fuse into one optimize pass; sharing one
/// constructor guarantees the batch spec and the serial factory agree.
pub fn revelio_batch_config(objective: Objective, effort: Effort) -> RevelioConfig {
    RevelioConfig {
        epochs: if effort == Effort::Quick { 100 } else { 500 },
        objective,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_method_instantiates() {
        for name in ALL_METHODS {
            let m = make_method(name, Objective::Factual, Effort::Quick, 0);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn counterfactual_variants_instantiate() {
        for name in ALL_METHODS {
            let m = make_method(name, Objective::Counterfactual, Effort::Quick, 0);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics() {
        let _ = make_method("Oracle", Objective::Factual, Effort::Quick, 0);
    }

    #[test]
    fn method_classifications_are_consistent() {
        for name in GROUP_LEVEL_METHODS {
            assert!(ALL_METHODS.contains(&name));
            assert!(is_group_level(name));
            assert!(!is_flow_based(name), "group-level methods are edge-mask");
        }
        for name in FLOW_METHODS {
            assert!(is_flow_based(name));
            assert!(!is_group_level(name));
        }
        assert!(flow_cap(Effort::Quick) < flow_cap(Effort::Paper));
    }

    #[test]
    fn factory_builds_the_named_method_with_the_given_seed() {
        let factory = method_factory("REVELIO", Objective::Factual, Effort::Quick);
        let m = factory(123);
        assert_eq!(m.name(), "REVELIO");
    }
}
