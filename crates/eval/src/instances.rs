//! Sampling explanation instances from datasets (§V-B "Specification":
//! randomly selected target instances per dataset).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use revelio_datasets::Dataset;
use revelio_gnn::{Gnn, Instance};
use revelio_graph::{count_flows, khop_subgraph, MpGraph, Target};
use revelio_runtime::ArtifactCache;

/// How instances are sampled.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Number of instances (the paper uses 50).
    pub count: usize,
    /// Skip instances whose message-flow count exceeds this cap (keeps
    /// flow-based methods tractable; skipped instances are reported).
    pub max_flows: u64,
    /// Restrict to motif-member targets with correct predictions (the
    /// Table IV AUC protocol).
    pub only_motif_correct: bool,
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            count: 50,
            max_flows: 300_000,
            only_motif_correct: false,
            seed: 0,
        }
    }
}

/// One sampled evaluation instance.
pub struct EvalInstance {
    /// The prepared instance (for node tasks: the `L`-hop subgraph).
    pub instance: Instance,
    /// The sampled node or graph id in the original dataset.
    pub dataset_index: usize,
    /// Stable content id of `instance.graph`, derived from the dataset name
    /// and the sampled index. Used as the serving runtime's artifact-cache
    /// key, so every explainer run against this instance shares one flow
    /// enumeration.
    pub graph_id: u64,
    /// Ground-truth motif edge labels per instance-graph edge, when the
    /// dataset has planted motifs.
    pub ground_truth: Option<Vec<bool>>,
}

/// FNV-1a over the dataset name plus a task/index tag: a stable,
/// collision-resistant-enough id for artifact-cache keys (distinct datasets
/// and indices map to distinct ids with overwhelming probability).
fn stable_graph_id(dataset_name: &str, tag: u8, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dataset_name
        .bytes()
        .chain([tag])
        .chain((index as u64).to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why [`try_sample_instances`] could not sample from a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingError {
    /// `only_motif_correct` needs node labels the dataset does not carry.
    MissingNodeLabels,
    /// `only_motif_correct` needs a graph label this graph does not carry.
    MissingGraphLabel {
        /// Index of the unlabelled graph in the dataset.
        graph: usize,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::MissingNodeLabels => {
                write!(
                    f,
                    "only_motif_correct requires node labels, but the dataset has none"
                )
            }
            SamplingError::MissingGraphLabel { graph } => {
                write!(
                    f,
                    "only_motif_correct requires a label for graph {graph}, which has none"
                )
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Samples explanation instances from `dataset` for `model`.
///
/// Infallible wrapper over [`try_sample_instances`].
///
/// # Panics
///
/// Panics when `cfg.only_motif_correct` is set and the dataset lacks the
/// labels the filter needs; use [`try_sample_instances`] to handle that as
/// a value.
pub fn sample_instances(dataset: &Dataset, model: &Gnn, cfg: &SamplingConfig) -> Vec<EvalInstance> {
    try_sample_instances(dataset, model, cfg).unwrap_or_else(|e| panic!("sample_instances: {e}"))
}

/// [`sample_instances`], routed through a runtime artifact cache.
///
/// # Panics
///
/// As [`sample_instances`].
pub fn sample_instances_cached(
    dataset: &Dataset,
    model: &Gnn,
    cfg: &SamplingConfig,
    cache: &ArtifactCache,
) -> Vec<EvalInstance> {
    try_sample_instances_cached(dataset, model, cfg, cache)
        .unwrap_or_else(|e| panic!("sample_instances: {e}"))
}

/// Samples explanation instances from `dataset` for `model`.
///
/// Node-classification instances are the 3-hop computation subgraphs around
/// randomly chosen target nodes; graph-classification instances are randomly
/// chosen graphs. Instances with no edges or with more than
/// `cfg.max_flows` message flows are skipped (sampling continues until
/// `cfg.count` instances are collected or candidates run out).
///
/// # Errors
///
/// Returns a [`SamplingError`] when `cfg.only_motif_correct` is set and the
/// dataset lacks the node or graph labels the filter needs.
pub fn try_sample_instances(
    dataset: &Dataset,
    model: &Gnn,
    cfg: &SamplingConfig,
) -> Result<Vec<EvalInstance>, SamplingError> {
    sample_inner(dataset, model, cfg, None)
}

/// [`try_sample_instances`], routed through a runtime artifact cache:
/// `L`-hop subgraphs are fetched from (or inserted into) the cache, and the
/// flow index of every *accepted* instance is pre-built into it, so the
/// explainers served against these instances start with cache hits instead
/// of re-enumerating flows per method.
///
/// # Errors
///
/// As [`try_sample_instances`].
pub fn try_sample_instances_cached(
    dataset: &Dataset,
    model: &Gnn,
    cfg: &SamplingConfig,
    cache: &ArtifactCache,
) -> Result<Vec<EvalInstance>, SamplingError> {
    sample_inner(dataset, model, cfg, Some(cache))
}

fn sample_inner(
    dataset: &Dataset,
    model: &Gnn,
    cfg: &SamplingConfig,
    cache: Option<&ArtifactCache>,
) -> Result<Vec<EvalInstance>, SamplingError> {
    let layers = model.num_layers();
    let warm_cap = usize::try_from(cfg.max_flows).unwrap_or(usize::MAX);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.count);

    match dataset {
        Dataset::Node(d) => {
            let mut candidates: Vec<usize> = (0..d.graph.num_nodes()).collect();
            candidates.shuffle(&mut rng);
            for v in candidates {
                if out.len() >= cfg.count {
                    break;
                }
                if cfg.only_motif_correct {
                    let in_motif = d.node_motif.as_ref().is_some_and(|nm| nm[v].is_some());
                    if !in_motif {
                        continue;
                    }
                }
                let dataset_id = stable_graph_id(d.name, 0, 0);
                let sub = match cache {
                    Some(c) => c.subgraph(dataset_id, &d.graph, v, layers),
                    None => Arc::new(khop_subgraph(&d.graph, v, layers)),
                };
                if sub.graph.num_edges() == 0 {
                    continue;
                }
                let mp = MpGraph::new(&sub.graph);
                if count_flows(&mp, layers, Target::Node(sub.target)) > cfg.max_flows {
                    continue;
                }
                let graph_id = stable_graph_id(d.name, 1, v);
                let instance =
                    Instance::for_prediction(model, sub.graph.clone(), Target::Node(sub.target));
                if let Some(c) = cache {
                    // Warm the flow index for the accepted instance; every
                    // flow-based explainer served against it reuses this
                    // enumeration (the count check above guarantees the
                    // build completes uncapped).
                    let _ = c.flow_index(graph_id, &instance.mp, layers, instance.target, warm_cap);
                }
                if cfg.only_motif_correct {
                    let label = d
                        .graph
                        .node_labels()
                        .ok_or(SamplingError::MissingNodeLabels)?[v];
                    if instance.class != label {
                        continue;
                    }
                }
                let ground_truth = d.ground_truth_for(v).map(|gt| {
                    let gt_set: HashSet<usize> = gt.iter().copied().collect();
                    (0..sub.graph.num_edges())
                        .map(|e| gt_set.contains(&sub.original_edge(e)))
                        .collect()
                });
                out.push(EvalInstance {
                    instance,
                    dataset_index: v,
                    graph_id,
                    ground_truth,
                });
            }
        }
        Dataset::Graph(d) => {
            let mut candidates: Vec<usize> = (0..d.graphs.len()).collect();
            candidates.shuffle(&mut rng);
            for gi in candidates {
                if out.len() >= cfg.count {
                    break;
                }
                let g = &d.graphs[gi];
                if g.num_edges() == 0 {
                    continue;
                }
                let mp = MpGraph::new(g);
                if count_flows(&mp, layers, Target::Graph) > cfg.max_flows {
                    continue;
                }
                let graph_id = stable_graph_id(d.name, 2, gi);
                let instance = Instance::for_prediction(model, g.clone(), Target::Graph);
                if let Some(c) = cache {
                    let _ = c.flow_index(graph_id, &instance.mp, layers, instance.target, warm_cap);
                }
                if cfg.only_motif_correct {
                    let label = g
                        .graph_label()
                        .ok_or(SamplingError::MissingGraphLabel { graph: gi })?;
                    if instance.class != label || d.ground_truth_for(gi).is_none() {
                        continue;
                    }
                }
                let ground_truth = d.ground_truth_for(gi).map(|gt| {
                    let gt_set: HashSet<usize> = gt.iter().copied().collect();
                    (0..g.num_edges()).map(|e| gt_set.contains(&e)).collect()
                });
                out.push(EvalInstance {
                    instance,
                    dataset_index: gi,
                    graph_id,
                    ground_truth,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_datasets::{ba_2motifs, tree_cycles};
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::Graph;

    #[test]
    fn node_sampling_produces_subgraph_instances() {
        let d = tree_cycles(0);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            d.graph.feat_dim(),
            d.num_classes,
            1,
        ));
        let ds = Dataset::Node(d);
        let cfg = SamplingConfig {
            count: 5,
            ..Default::default()
        };
        let instances = sample_instances(&ds, &model, &cfg);
        assert_eq!(instances.len(), 5);
        for ei in &instances {
            assert!(ei.instance.graph.num_edges() > 0);
            assert!(matches!(ei.instance.target, Target::Node(_)));
        }
    }

    #[test]
    fn graph_sampling_with_motif_filter_has_ground_truth() {
        let d = ba_2motifs(0);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::GraphClassification,
            10,
            2,
            2,
        ));
        let ds = Dataset::Graph(d);
        let cfg = SamplingConfig {
            count: 4,
            only_motif_correct: true,
            ..Default::default()
        };
        let instances = sample_instances(&ds, &model, &cfg);
        for ei in &instances {
            let gt = ei.ground_truth.as_ref().expect("motif ground truth");
            assert!(gt.iter().any(|&b| b));
            assert!(gt.iter().any(|&b| !b));
        }
    }

    #[test]
    fn motif_filter_without_labels_is_a_typed_error() {
        use revelio_datasets::{NodeDataset, Split};
        let mut b = Graph::builder(3, 2);
        b.edge(0, 1).edge(1, 2).edge(2, 0);
        let d = NodeDataset {
            name: "unlabelled",
            graph: b.build(), // no node labels attached
            num_classes: 2,
            split: Split {
                train: vec![],
                val: vec![],
                test: vec![],
            },
            node_motif: Some(vec![Some(0); 3]),
            motif_edges: Some(vec![vec![0, 1, 2]]),
        };
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            0,
        ));
        let cfg = SamplingConfig {
            count: 1,
            only_motif_correct: true,
            ..Default::default()
        };
        let err = try_sample_instances(&Dataset::Node(d), &model, &cfg)
            .err()
            .expect("filter must fail on the unlabelled dataset");
        assert_eq!(err, SamplingError::MissingNodeLabels);
    }

    #[test]
    fn cached_sampling_warms_the_flow_cache_for_every_explainer() {
        use crate::Effort;
        use revelio_core::ExplainControl;

        let d = tree_cycles(2);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            d.graph.feat_dim(),
            d.num_classes,
            5,
        ));
        let ds = Dataset::Node(d);
        let cfg = SamplingConfig {
            count: 2,
            ..Default::default()
        };
        let cache = ArtifactCache::new(2, 64);
        let instances = sample_instances_cached(&ds, &model, &cfg, &cache);
        assert_eq!(instances.len(), 2);
        let (_, misses_after_sampling) = cache.stats();

        // Serve two different flow-based explainers against the same
        // instance, each resolving its flow index through the cache the way
        // the runtime's prep stage does.
        let e = &instances[0];
        let layers = model.num_layers();
        let cap = usize::try_from(cfg.max_flows).unwrap_or(usize::MAX);
        let mut indexes = Vec::new();
        for explainer in [
            crate::make_method(
                "GNN-LRP",
                revelio_core::Objective::Factual,
                Effort::Quick,
                0,
            ),
            crate::make_method(
                "REVELIO",
                revelio_core::Objective::Factual,
                Effort::Quick,
                0,
            ),
        ] {
            let cached =
                cache.flow_index(e.graph_id, &e.instance.mp, layers, e.instance.target, cap);
            assert_eq!(cached.dropped, 0);
            let ctl = ExplainControl {
                flow_index: Some(Arc::clone(&cached.index)),
                ..Default::default()
            };
            let out = explainer.explain_controlled(&model, &e.instance, &ctl);
            indexes.push(out.explanation.flows.expect("flow scores").index);
        }
        // Sampling built each accepted instance's index exactly once; both
        // explainers were pure cache hits on the same Arc.
        let (hits, misses) = cache.stats();
        assert_eq!(
            misses, misses_after_sampling,
            "explainers must not re-enumerate flows"
        );
        assert!(hits >= 2, "each explainer prep must hit the warmed cache");
        assert!(Arc::ptr_eq(&indexes[0], &indexes[1]));
    }

    #[test]
    fn cached_and_uncached_sampling_agree() {
        let d = tree_cycles(4);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            d.graph.feat_dim(),
            d.num_classes,
            6,
        ));
        let ds = Dataset::Node(d);
        let cfg = SamplingConfig {
            count: 5,
            ..Default::default()
        };
        let cache = ArtifactCache::new(4, 64);
        let plain = sample_instances(&ds, &model, &cfg);
        let cached = sample_instances_cached(&ds, &model, &cfg, &cache);
        assert_eq!(plain.len(), cached.len());
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.dataset_index, b.dataset_index);
            assert_eq!(a.graph_id, b.graph_id);
            assert_eq!(a.instance.graph.num_edges(), b.instance.graph.num_edges());
            assert_eq!(a.instance.class, b.instance.class);
        }
    }

    #[test]
    fn graph_ids_are_unique_per_dataset_and_index() {
        assert_ne!(
            super::stable_graph_id("Tree-Cycles", 1, 3),
            super::stable_graph_id("Tree-Cycles", 1, 4)
        );
        assert_ne!(
            super::stable_graph_id("Tree-Cycles", 1, 3),
            super::stable_graph_id("BA-Shapes", 1, 3)
        );
        assert_ne!(
            super::stable_graph_id("MUTAG", 1, 3),
            super::stable_graph_id("MUTAG", 2, 3)
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = tree_cycles(1);
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            d.graph.feat_dim(),
            d.num_classes,
            3,
        ));
        let ds = Dataset::Node(d);
        let cfg = SamplingConfig {
            count: 6,
            ..Default::default()
        };
        let a: Vec<usize> = sample_instances(&ds, &model, &cfg)
            .iter()
            .map(|e| e.dataset_index)
            .collect();
        let b: Vec<usize> = sample_instances(&ds, &model, &cfg)
            .iter()
            .map(|e| e.dataset_index)
            .collect();
        assert_eq!(a, b);
    }
}
