//! Training and caching the target models of Table III.

use revelio_datasets::Dataset;
use revelio_gnn::{
    evaluate_graph_accuracy, evaluate_node_accuracy, train_graph_classifier, train_node_classifier,
    Gnn, GnnConfig, GnnKind, ModelZoo, Task, TrainConfig,
};

use crate::methods::Effort;

/// The zoo key for a (dataset, architecture) pair.
pub fn model_key(dataset_name: &str, kind: GnnKind) -> String {
    format!(
        "{}_{}",
        dataset_name.to_lowercase().replace('-', "_"),
        kind.name().to_lowercase()
    )
}

/// Training configuration tuned per dataset size and task.
pub fn train_config_for(dataset: &Dataset, effort: Effort, seed: u64) -> TrainConfig {
    let quick = effort == Effort::Quick;
    match dataset {
        Dataset::Node(d) => {
            // Small synthetic graphs are cheap per epoch but need many
            // epochs to extract their structural signal.
            let small = d.graph.num_nodes() < 5000;
            let epochs = if small { 500 } else { 250 };
            TrainConfig {
                epochs: if quick {
                    (epochs * 3 / 5).max(250)
                } else {
                    epochs
                },
                lr: 1e-2,
                weight_decay: 5e-4,
                seed,
                ..Default::default()
            }
        }
        Dataset::Graph(d) => {
            let train_count = d.split.train.len().max(1);
            // Smaller collections get more epochs; keep total work bounded.
            // BA-2motifs needs ~40 epochs before the structural signal is
            // picked up at all; never go below that.
            let epochs = (40_000 / train_count).clamp(45, 80);
            TrainConfig {
                epochs: if quick {
                    (epochs * 2 / 3).max(45)
                } else {
                    epochs
                },
                lr: 1e-2,
                weight_decay: 0.0,
                batch_size: 32,
                clip_norm: Some(5.0),
                seed,
                report_every: 0,
            }
        }
    }
}

/// Returns the cached trained model for `(dataset, kind)`, training and
/// caching it if absent.
pub fn trained_model(
    zoo: &ModelZoo,
    dataset: &Dataset,
    kind: GnnKind,
    effort: Effort,
    seed: u64,
) -> Gnn {
    let (task, in_dim, classes) = match dataset {
        Dataset::Node(d) => (Task::NodeClassification, d.graph.feat_dim(), d.num_classes),
        Dataset::Graph(d) => (
            Task::GraphClassification,
            d.graphs[0].feat_dim(),
            d.num_classes,
        ),
    };
    let config = GnnConfig::standard(kind, task, in_dim, classes, seed);
    let key = model_key(dataset.name(), kind);
    let train_cfg = train_config_for(dataset, effort, seed);
    zoo.get_or_train(&key, config, |model| match dataset {
        Dataset::Node(d) => {
            train_node_classifier(model, &d.graph, &d.split.train, &train_cfg);
        }
        Dataset::Graph(d) => {
            train_graph_classifier(model, &d.graphs, &d.split.train, &train_cfg);
        }
    })
}

/// Test-split accuracy of a model on its dataset.
pub fn model_accuracy(model: &Gnn, dataset: &Dataset) -> f64 {
    match dataset {
        Dataset::Node(d) => evaluate_node_accuracy(model, &d.graph, &d.split.test),
        Dataset::Graph(d) => evaluate_graph_accuracy(model, &d.graphs, &d.split.test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_datasets::tree_cycles;

    #[test]
    fn model_key_is_filesystem_friendly() {
        assert_eq!(model_key("BA-Shapes", GnnKind::Gcn), "ba_shapes_gcn");
        assert_eq!(model_key("Tree-Cycles", GnnKind::Gat), "tree_cycles_gat");
    }

    #[test]
    fn trained_model_learns_tree_cycles_reasonably() {
        let ds = Dataset::Node(tree_cycles(0));
        let dir = std::env::temp_dir().join(format!("revelio_eval_zoo_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let zoo = ModelZoo::open(&dir);
        let model = trained_model(&zoo, &ds, GnnKind::Gcn, Effort::Quick, 0);
        let acc = model_accuracy(&model, &ds);
        // Tree-Cycles is easy: motif nodes vs tree nodes; even a quick run
        // should clearly beat chance.
        assert!(acc > 0.6, "accuracy {acc}");
        // Second call must hit the cache (same weights, same accuracy).
        let again = trained_model(&zoo, &ds, GnnKind::Gcn, Effort::Quick, 0);
        assert!((model_accuracy(&again, &ds) - acc).abs() < 1e-12);
    }
}
