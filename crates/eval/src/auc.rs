//! ROC-AUC via the rank-sum (Mann–Whitney U) formulation with midrank tie
//! handling — the explanation-plausibility metric of Table IV.

/// Computes the area under the ROC curve for binary `labels` given `scores`.
///
/// Returns `None` when one class is absent (AUC undefined).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "one label per score");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores must not be NaN")
    });

    // Midranks for ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }

    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos * n_neg) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let auc = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_separation_is_zero() {
        let auc = roc_auc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn uniform_scores_give_half() {
        let auc = roc_auc(&[0.5; 6], &[true, false, true, false, true, false]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_is_undefined() {
        assert!(roc_auc(&[0.1, 0.9], &[true, true]).is_none());
        assert!(roc_auc(&[0.1, 0.9], &[false, false]).is_none());
    }

    #[test]
    fn matches_hand_computed_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs won: (0.8>0.6), (0.8>0.2), (0.4<0.6 lose), (0.4>0.2) = 3/4.
        let auc = roc_auc(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }
}
