//! ROC-AUC via the rank-sum (Mann–Whitney U) formulation with midrank tie
//! handling — the explanation-plausibility metric of Table IV.

use std::fmt;

/// A score that is `NaN` or infinite, for which a ranking metric is
/// meaningless. Returned by [`try_roc_auc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteScore {
    /// Position of the offending score.
    pub index: usize,
    /// The score itself (`NaN` or `±inf`).
    pub value: f32,
}

impl fmt::Display for NonFiniteScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite score {} at index {}", self.value, self.index)
    }
}

impl std::error::Error for NonFiniteScore {}

/// [`roc_auc`] with non-finite scores rejected up front instead of silently
/// ranked (`total_cmp` places `NaN` above every finite value, which would
/// quietly corrupt the AUC of a diverged explainer).
///
/// # Errors
///
/// Returns the first [`NonFiniteScore`] encountered.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn try_roc_auc(scores: &[f32], labels: &[bool]) -> Result<Option<f64>, NonFiniteScore> {
    if let Some((index, &value)) = scores.iter().enumerate().find(|(_, v)| !v.is_finite()) {
        return Err(NonFiniteScore { index, value });
    }
    Ok(roc_auc(scores, labels))
}

/// Computes the area under the ROC curve for binary `labels` given `scores`.
///
/// Returns `None` when one class is absent (AUC undefined). Non-finite
/// scores are ranked by IEEE total order (`NaN` highest); use
/// [`try_roc_auc`] to reject them instead.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "one label per score");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    // Midranks for ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }

    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos * n_neg) as f64)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let auc = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_separation_is_zero() {
        let auc = roc_auc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn uniform_scores_give_half() {
        let auc = roc_auc(&[0.5; 6], &[true, false, true, false, true, false]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_is_undefined() {
        assert!(roc_auc(&[0.1, 0.9], &[true, true]).is_none());
        assert!(roc_auc(&[0.1, 0.9], &[false, false]).is_none());
    }

    #[test]
    fn try_roc_auc_rejects_non_finite_scores() {
        let err = try_roc_auc(&[0.3, f32::NAN, 0.7], &[true, false, true]).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.value.is_nan());
        let err = try_roc_auc(&[f32::INFINITY, 0.1], &[true, false]).unwrap_err();
        assert_eq!(err.index, 0);
        // Finite scores pass straight through.
        let ok = try_roc_auc(&[0.9, 0.1], &[true, false]).unwrap().unwrap();
        assert!((ok - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_no_longer_panic_plain_roc_auc() {
        // total_cmp ranks NaN above every finite score, deterministically.
        let auc = roc_auc(&[f32::NAN, 0.5], &[false, true]).unwrap();
        assert!(auc.abs() < 1e-12);
    }

    #[test]
    fn matches_hand_computed_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs won: (0.8>0.6), (0.8>0.2), (0.4<0.6 lose), (0.4>0.2) = 3/4.
        let auc = roc_auc(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }
}
