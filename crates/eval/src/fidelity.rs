//! Fidelity metrics (Eqs. 10–11 of the paper).
//!
//! The *sparsity ratio* is the proportion of edges removed from the
//! instance graph. Fidelity− removes the `s·|E|` **least** important edges
//! (keeping the explanation) and measures the probability drop; Fidelity+
//! removes the `s·|E|` **most** important edges and measures the drop
//! without the explanation.

use revelio_core::Explanation;
use revelio_gnn::{Gnn, Instance};

/// The model's probability of the explained class after keeping only the
/// `keep` edge ids of the instance graph.
pub fn perturbed_probability(model: &Gnn, instance: &Instance, keep: &[usize]) -> f32 {
    let g = instance.graph.with_edges(keep);
    model.predict_probs(&g, instance.target)[instance.class]
}

fn removal_count(num_edges: usize, sparsity: f64) -> usize {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    ((num_edges as f64) * sparsity).round() as usize
}

/// Fidelity− (Eq. 10): `P(y|G) − P(y|G_s)` where `G_s` keeps the most
/// important `(1−s)·|E|` edges. Smaller is better for factual explanations.
pub fn fidelity_minus(
    model: &Gnn,
    instance: &Instance,
    explanation: &Explanation,
    sparsity: f64,
) -> f32 {
    let m = instance.graph.num_edges();
    let n_remove = removal_count(m, sparsity);
    let ranked = explanation.ranked_edges();
    let keep: Vec<usize> = ranked[..m - n_remove].to_vec();
    instance.orig_prob() - perturbed_probability(model, instance, &keep)
}

/// Fidelity+ (Eq. 11): `P(y|G) − P(y|G_s̄)` where `G_s̄` removes the most
/// important `s·|E|` edges. Larger is better for counterfactual
/// explanations.
pub fn fidelity_plus(
    model: &Gnn,
    instance: &Instance,
    explanation: &Explanation,
    sparsity: f64,
) -> f32 {
    let m = instance.graph.num_edges();
    let n_remove = removal_count(m, sparsity);
    let ranked = explanation.ranked_edges();
    let keep: Vec<usize> = ranked[n_remove..].to_vec();
    instance.orig_prob() - perturbed_probability(model, instance, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_gnn::{GnnConfig, GnnKind, Task};
    use revelio_graph::{Graph, Target};

    fn setup() -> (Gnn, Instance) {
        let mut b = Graph::builder(4, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        for v in 0..4 {
            b.node_features(v, &[1.0, v as f32]);
        }
        let g = b.build();
        let model = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            2,
            111,
        ));
        let inst = Instance::for_prediction(&model, g, Target::Node(1));
        (model, inst)
    }

    #[test]
    fn zero_sparsity_gives_zero_fidelity() {
        let (model, inst) = setup();
        let exp = Explanation::from_edge_scores(vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3]);
        let fm = fidelity_minus(&model, &inst, &exp, 0.0);
        let fp = fidelity_plus(&model, &inst, &exp, 0.0);
        assert!(fm.abs() < 1e-6);
        assert!(fp.abs() < 1e-6);
    }

    #[test]
    fn full_sparsity_removes_everything_for_both() {
        let (model, inst) = setup();
        let exp = Explanation::from_edge_scores(vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3]);
        let fm = fidelity_minus(&model, &inst, &exp, 1.0);
        let fp = fidelity_plus(&model, &inst, &exp, 1.0);
        // With all edges removed, both metrics measure the same graph.
        assert!((fm - fp).abs() < 1e-6);
    }

    #[test]
    fn fidelity_minus_keeps_highest_ranked() {
        let (model, inst) = setup();
        // Perfect explanation: keep edges around the target.
        let exp = Explanation::from_edge_scores(vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
        let fm = fidelity_minus(&model, &inst, &exp, 2.0 / 6.0);
        // Removing the two zero-scored edges (2->3, 3->2), which are two hops
        // from the target in a 3-layer GCN — the prediction shifts but the
        // direct neighbourhood is intact.
        let g_direct = inst.graph.with_edges(&[0, 1, 2, 3]);
        let expected = inst.orig_prob() - model.predict_probs(&g_direct, inst.target)[inst.class];
        assert!((fm - expected).abs() < 1e-6);
    }

    #[test]
    fn metrics_bounded_by_probability_range() {
        let (model, inst) = setup();
        let exp = Explanation::from_edge_scores(vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.05]);
        for s in [0.2, 0.5, 0.8] {
            let fm = fidelity_minus(&model, &inst, &exp, s);
            let fp = fidelity_plus(&model, &inst, &exp, s);
            assert!((-1.0..=1.0).contains(&fm));
            assert!((-1.0..=1.0).contains(&fp));
        }
    }
}
