//! Graphviz DOT rendering of explanations (Fig. 6's visual vocabulary:
//! motif nodes gold, target red, explanatory edges bold, missed ground-truth
//! edges dashed red).

use std::collections::HashSet;
use std::fmt::Write as _;

use revelio_graph::{Graph, Target};

/// Options for [`explanation_dot`].
pub struct DotOptions<'a> {
    /// Graph title (rendered as the DOT label).
    pub title: &'a str,
    /// Edge ids the explanation selected (typically `top_edges(k)`).
    pub explanatory: &'a [usize],
    /// Ground-truth motif edge ids, if known.
    pub ground_truth: Option<&'a [usize]>,
    /// The prediction target (its node is highlighted for node tasks).
    pub target: Target,
}

/// Renders a graph with explanation overlays as Graphviz DOT.
///
/// Undirected edge pairs (both directions stored) are drawn once without an
/// arrowhead; an undirected pair counts as explanatory / ground truth if
/// either direction is flagged.
pub fn explanation_dot(g: &Graph, opts: &DotOptions<'_>) -> String {
    let chosen: HashSet<usize> = opts.explanatory.iter().copied().collect();
    let gt: HashSet<usize> = opts
        .ground_truth
        .map(|v| v.iter().copied().collect())
        .unwrap_or_default();
    let target = match opts.target {
        Target::Node(v) => Some(v),
        Target::Graph => None,
    };

    // A node is "in the motif" when it touches a ground-truth edge.
    let mut motif_nodes: HashSet<usize> = HashSet::new();
    for &e in &gt {
        let (s, d) = g.edges()[e];
        motif_nodes.insert(s as usize);
        motif_nodes.insert(d as usize);
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", opts.title);
    let _ = writeln!(out, "  label=\"{}\";", opts.title);
    for v in 0..g.num_nodes() {
        let color = if Some(v) == target {
            "red"
        } else if motif_nodes.contains(&v) {
            "gold"
        } else {
            "lightgray"
        };
        let _ = writeln!(out, "  {v} [style=filled, fillcolor={color}];");
    }

    // Pair up reverse edges so undirected datasets render one line per bond.
    let mut reverse_of = vec![None; g.num_edges()];
    for (eid, &(s, d)) in g.edges().iter().enumerate() {
        if reverse_of[eid].is_none() {
            if let Some(r) = g.edges().iter().position(|&(a, b)| a == d && b == s) {
                reverse_of[eid] = Some(r);
                reverse_of[r] = Some(eid);
            }
        }
    }

    let mut drawn = vec![false; g.num_edges()];
    for (eid, &(s, d)) in g.edges().iter().enumerate() {
        if drawn[eid] {
            continue;
        }
        drawn[eid] = true;
        let mut explained = chosen.contains(&eid);
        let mut in_gt = gt.contains(&eid);
        let mut undirected = false;
        if let Some(r) = reverse_of[eid] {
            drawn[r] = true;
            explained |= chosen.contains(&r);
            in_gt |= gt.contains(&r);
            undirected = true;
        }
        let attrs = match (explained, in_gt) {
            (true, _) => "color=black, penwidth=3",
            (false, true) => "color=red, style=dashed",
            (false, false) => "color=gray",
        };
        let dir = if undirected { "dir=none, " } else { "" };
        let _ = writeln!(out, "  {s} -> {d} [{dir}{attrs}];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut b = Graph::builder(4, 1);
        b.undirected_edge(0, 1).undirected_edge(1, 2).edge(2, 3); // one directed edge
        b.build()
    }

    #[test]
    fn renders_highlights_and_target() {
        let g = diamond();
        let dot = explanation_dot(
            &g,
            &DotOptions {
                title: "demo",
                explanatory: &[0],
                ground_truth: Some(&[2]), // 1->2 direction of the second bond
                target: Target::Node(1),
            },
        );
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("1 [style=filled, fillcolor=red]"));
        // Edge 0 (0->1 / 1->0 pair) is explanatory: bold, undirected.
        assert!(dot.contains("0 -> 1 [dir=none, color=black, penwidth=3]"));
        // Ground-truth bond not selected: dashed red.
        assert!(dot.contains("1 -> 2 [dir=none, color=red, style=dashed]"));
        // Lone directed edge keeps its arrow.
        assert!(dot.contains("2 -> 3 [color=gray]"));
    }

    #[test]
    fn motif_nodes_coloured_gold() {
        let g = diamond();
        let dot = explanation_dot(
            &g,
            &DotOptions {
                title: "m",
                explanatory: &[],
                ground_truth: Some(&[0, 1]),
                target: Target::Graph,
            },
        );
        assert!(dot.contains("0 [style=filled, fillcolor=gold]"));
        assert!(dot.contains("3 [style=filled, fillcolor=lightgray]"));
    }

    #[test]
    fn each_undirected_pair_drawn_once() {
        let g = diamond();
        let dot = explanation_dot(
            &g,
            &DotOptions {
                title: "d",
                explanatory: &[],
                ground_truth: None,
                target: Target::Graph,
            },
        );
        let arrows = dot.matches(" -> ").count();
        // 2 undirected bonds + 1 directed edge = 3 drawn lines.
        assert_eq!(arrows, 3);
    }
}
