//! Evaluation harness: metrics, instance sampling, the method registry, and
//! report utilities backing every table and figure of the paper.

mod auc;
mod fidelity;
mod instances;
mod methods;
mod models;
mod report;
mod viz;

pub use auc::{roc_auc, try_roc_auc, NonFiniteScore};
pub use fidelity::{fidelity_minus, fidelity_plus, perturbed_probability};
pub use instances::{
    sample_instances, try_sample_instances, EvalInstance, SamplingConfig, SamplingError,
};
pub use methods::{make_method, Effort, ALL_METHODS, FLOW_METHODS};
pub use models::{model_accuracy, model_key, train_config_for, trained_model};
pub use report::{experiments_dir, Table};
pub use viz::{explanation_dot, DotOptions};
