//! Evaluation harness: metrics, instance sampling, the method registry, and
//! report utilities backing every table and figure of the paper.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod auc;
mod fidelity;
mod instances;
mod methods;
mod models;
mod report;
mod viz;

pub use auc::{roc_auc, try_roc_auc, NonFiniteScore};
pub use fidelity::{fidelity_minus, fidelity_plus, perturbed_probability};
pub use instances::{
    sample_instances, sample_instances_cached, try_sample_instances, try_sample_instances_cached,
    EvalInstance, SamplingConfig, SamplingError,
};
pub use methods::{
    flow_cap, is_flow_based, is_group_level, make_method, method_factory, revelio_batch_config,
    Effort, ALL_METHODS, FLOW_METHODS, GROUP_LEVEL_METHODS,
};
pub use models::{model_accuracy, model_key, train_config_for, trained_model};
pub use report::{experiments_dir, Table};
pub use viz::{explanation_dot, DotOptions};
