//! Plain-text tables and CSV output for the harness binaries.

use std::fs;
use std::path::{Path, PathBuf};

/// A printable experiment table that can also be written as CSV.
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    // Printing is this method's contract; callers wanting a string use
    // `render`.
    #[allow(clippy::print_stdout)]
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_csv(&self, path: impl AsRef<Path>) {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create experiment output directory");
        }
        fs::write(path, out).expect("write CSV");
    }
}

/// The canonical experiment-output directory (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "score"]);
        t.row(vec!["REVELIO".into(), "0.978".into()]);
        t.row(vec!["FlowX".into(), "0.317".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("REVELIO  0.978"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_row() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = std::env::temp_dir().join(format!("revelio_csv_{}.csv", std::process::id()));
        t.write_csv(&path);
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }
}
