//! The append-only single-file log backend.
//!
//! ## On-disk format
//!
//! ```text
//! file   := header record*
//! header := magic "RVST" (4) | format version u16 LE | reserved u16 |
//!           generation u64 LE                                  (16 bytes)
//! record := kind u8 | payload len u32 LE | CRC-32 u32 LE | payload
//! ```
//!
//! Records are only ever appended; a key written twice is *superseded* (the
//! in-memory index points at the newest span) and the dead bytes are
//! reclaimed by [`LogStore::compact`], which rewrites the live set into a
//! fresh file under `generation + 1` and atomically renames it over the
//! log.
//!
//! ## Recovery invariants
//!
//! [`LogStore::open`] replays the whole file to rebuild the index. Replay
//! stops at the first frame that cannot be a complete record — short
//! header, length past end-of-file, CRC mismatch, or an oversized length —
//! and *truncates* the file there: a crash mid-append loses at most the
//! record being written, never anything before it. Unknown record kinds
//! with valid CRCs are skipped (forward compatibility), counted in
//! [`RecoveryReport::skipped`].

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use revelio_check::sync::Mutex;
use revelio_graph::Target;

use crate::records::{
    ExplanationRecord, ExplanationSummary, FlowsRecord, MaskHit, MaskKey, ModelRecord,
};
use crate::{Store, StoreError};

/// First four bytes of every store file.
pub const FILE_MAGIC: [u8; 4] = *b"RVST";

/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// File header length in bytes.
pub const HEADER_LEN: u64 = 16;

/// Record header length in bytes (kind + length + CRC).
pub const RECORD_HEADER_LEN: u64 = 9;

/// Upper bound on a single record payload; a longer declared length is
/// treated as a torn tail rather than an allocation request.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

const REC_MODEL: u8 = 1;
const REC_FLOWS: u8 = 2;
const REC_EXPLANATION: u8 = 3;

/// CRC-32 (IEEE) lookup table, built at compile time — same polynomial as
/// the network frame checksum, computed independently so the store has no
/// dependency on the server crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What [`LogStore::open`] found while replaying the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete records replayed into the index (including superseded
    /// ones).
    pub records: u64,
    /// Valid records of unknown kind that were skipped.
    pub skipped: u64,
    /// Torn-tail bytes dropped by truncation (`0` on a clean open).
    pub truncated_bytes: u64,
    /// Compaction generation the file carries.
    pub generation: u64,
}

/// What [`LogStore::compact`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Generation of the compacted file (`old + 1`).
    pub generation: u64,
    /// Physical records before / after.
    pub records_before: u64,
    /// Live records rewritten.
    pub records_after: u64,
    /// File bytes before / after.
    pub bytes_before: u64,
    /// File bytes after compaction.
    pub bytes_after: u64,
}

/// Byte span of one record payload inside the log file.
#[derive(Debug, Clone, Copy)]
struct Span {
    /// Payload offset (past the record header).
    offset: u64,
    len: u32,
    crc: u32,
    kind: u8,
}

/// The in-memory index, rebuilt on open: newest span per key, plus the
/// listing summaries and the newest-mask map that answers warm-start
/// lookups without touching the file.
#[derive(Default)]
struct Index {
    models: BTreeMap<u32, Span>,
    flows: HashMap<(u64, Target, u32, u64), Span>,
    explanations: BTreeMap<u64, Span>,
    summaries: BTreeMap<u64, ExplanationSummary>,
    /// `MaskKey` → job id of the newest mask-bearing record.
    masks: HashMap<MaskKey, u64>,
}

struct Inner {
    path: PathBuf,
    file: File,
    /// Offset one past the last complete record — where the next append
    /// goes.
    end: u64,
    generation: u64,
    /// Physical records in the file (live + superseded).
    physical_records: u64,
    recovery: RecoveryReport,
    index: Index,
}

/// The append-only single-file [`Store`] backend.
pub struct LogStore {
    inner: Mutex<Inner>,
}

impl LogStore {
    /// Opens (or creates) the log at `path`, replaying it into a fresh
    /// in-memory index and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`StoreError::Io`]; a file that is not a
    /// store log (bad magic, unsupported format version, undecodable
    /// CRC-valid record) as [`StoreError::Corrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<LogStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let inner = if len == 0 {
            write_header(&mut file, 1)?;
            Inner {
                path,
                file,
                end: HEADER_LEN,
                generation: 1,
                physical_records: 0,
                recovery: RecoveryReport {
                    generation: 1,
                    ..RecoveryReport::default()
                },
                index: Index::default(),
            }
        } else {
            replay(path, file)?
        };
        Ok(LogStore {
            inner: Mutex::new(inner),
        })
    }

    /// What the open-time replay found (truncated a torn tail, skipped
    /// unknown kinds, …). Reflects the most recent open or compaction.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery
    }

    /// Compacts the log: rewrites only the live (newest-per-key) records
    /// into a `generation + 1` file and atomically renames it over the
    /// log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the rewrite fails; the original file
    /// is untouched until the final rename.
    pub fn compact(&self) -> Result<CompactionStats, StoreError> {
        let mut inner = self.lock();
        let before_records = inner.physical_records;
        let before_bytes = inner.end;
        let generation = inner.generation + 1;

        // Collect the live spans in a deterministic order: models by id,
        // flow indexes by key, explanations by job id.
        let mut live: Vec<Span> = Vec::new();
        live.extend(inner.index.models.values().copied());
        let mut flow_keys: Vec<_> = inner.index.flows.keys().copied().collect();
        flow_keys.sort_unstable_by_key(|&(g, t, l, m)| (g, target_order(t), l, m));
        live.extend(flow_keys.iter().map(|k| inner.index.flows[k]));
        live.extend(inner.index.explanations.values().copied());

        let tmp_path = compact_path(&inner.path);
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        write_header(&mut tmp, generation)?;
        let records_after = live.len() as u64;
        for span in live {
            let payload = read_span(&mut inner.file, span)?;
            let mut frame = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
            frame.push(span.kind);
            frame.extend_from_slice(&span.len.to_le_bytes());
            frame.extend_from_slice(&span.crc.to_le_bytes());
            frame.extend_from_slice(&payload);
            tmp.write_all(&frame)?;
        }
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &inner.path)?;

        // Reopen and replay the compacted file so spans point into it.
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&inner.path)?;
        *inner = replay(inner.path.clone(), file)?;
        Ok(CompactionStats {
            generation,
            records_before: before_records,
            records_after,
            bytes_before: before_bytes,
            bytes_after: inner.end,
        })
    }

    fn lock(&self) -> revelio_check::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// `.compact` sibling of the log file, used as the rewrite target.
fn compact_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("store"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".compact");
    path.with_file_name(name)
}

/// Deterministic sort key for [`Target`] (compaction rewrites in a stable
/// order so byte-identical stores compact identically).
fn target_order(t: Target) -> (u8, u64) {
    match t {
        Target::Graph => (0, 0),
        Target::Node(n) => (1, n as u64),
    }
}

fn write_header(file: &mut File, generation: u64) -> Result<(), StoreError> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&FILE_MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    Ok(())
}

fn read_span(file: &mut File, span: Span) -> Result<Vec<u8>, StoreError> {
    file.seek(SeekFrom::Start(span.offset))?;
    let mut payload = vec![0u8; span.len as usize];
    file.read_exact(&mut payload)?;
    if crc32(&payload) != span.crc {
        return Err(StoreError::Corrupt {
            offset: span.offset,
            what: "record payload no longer matches its checksum",
        });
    }
    Ok(payload)
}

/// Replays `file` into a fresh [`Inner`], truncating any torn tail.
fn replay(path: PathBuf, mut file: File) -> Result<Inner, StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(StoreError::Corrupt {
            offset: 0,
            what: "file shorter than the store header",
        });
    }
    if bytes[..4] != FILE_MAGIC {
        return Err(StoreError::Corrupt {
            offset: 0,
            what: "bad store magic",
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt {
            offset: 4,
            what: "unsupported store format version",
        });
    }
    let generation =
        u64::from_le_bytes(bytes[8..16].try_into().map_err(|_| StoreError::Corrupt {
            offset: 8,
            what: "short generation field",
        })?);

    let mut index = Index::default();
    let mut offset = HEADER_LEN as usize;
    let mut records = 0u64;
    let mut skipped = 0u64;
    loop {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_LEN as usize {
            break; // torn or absent header: end of the valid prefix
        }
        let kind = bytes[offset];
        let len = u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().unwrap_or([0; 4]));
        let crc = u32::from_le_bytes(bytes[offset + 5..offset + 9].try_into().unwrap_or([0; 4]));
        if len > MAX_RECORD_LEN {
            break; // implausible length: torn tail
        }
        let payload_at = offset + RECORD_HEADER_LEN as usize;
        if remaining < RECORD_HEADER_LEN as usize + len as usize {
            break; // payload past end-of-file: torn tail
        }
        let payload = &bytes[payload_at..payload_at + len as usize];
        if crc32(payload) != crc {
            break; // partially written payload: torn tail
        }
        let span = Span {
            offset: payload_at as u64,
            len,
            crc,
            kind,
        };
        match kind {
            REC_MODEL => {
                let rec = ModelRecord::decode(payload).map_err(|_| StoreError::Corrupt {
                    offset: payload_at as u64,
                    what: "CRC-valid model record does not decode",
                })?;
                index.models.insert(rec.model_id, span);
            }
            REC_FLOWS => {
                let rec = FlowsRecord::decode(payload).map_err(|_| StoreError::Corrupt {
                    offset: payload_at as u64,
                    what: "CRC-valid flow record does not decode",
                })?;
                index
                    .flows
                    .insert((rec.graph_id, rec.target, rec.layers, rec.max_flows), span);
            }
            REC_EXPLANATION => {
                let rec = ExplanationRecord::decode(payload).map_err(|_| StoreError::Corrupt {
                    offset: payload_at as u64,
                    what: "CRC-valid explanation record does not decode",
                })?;
                index.summaries.insert(rec.job_id, rec.summary());
                if rec.mask.is_some() {
                    index.masks.insert(rec.key, rec.job_id);
                }
                index.explanations.insert(rec.job_id, span);
            }
            _ => skipped += 1, // future record kind: ignore, keep replaying
        }
        records += 1;
        offset = payload_at + len as usize;
    }

    let truncated = (bytes.len() - offset) as u64;
    if truncated > 0 {
        file.set_len(offset as u64)?;
    }
    Ok(Inner {
        path,
        file,
        end: offset as u64,
        generation,
        physical_records: records,
        recovery: RecoveryReport {
            records,
            skipped,
            truncated_bytes: truncated,
            generation,
        },
        index,
    })
}

fn append(inner: &mut Inner, kind: u8, payload: &[u8]) -> Result<Span, StoreError> {
    debug_assert!(payload.len() <= MAX_RECORD_LEN as usize);
    let crc = crc32(payload);
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
    frame.push(kind);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    inner.file.seek(SeekFrom::Start(inner.end))?;
    inner.file.write_all(&frame)?;
    let span = Span {
        offset: inner.end + RECORD_HEADER_LEN,
        len,
        crc,
        kind,
    };
    inner.end += frame.len() as u64;
    inner.physical_records += 1;
    Ok(span)
}

impl Store for LogStore {
    fn put_model(&self, rec: &ModelRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        rec.encode(&mut payload);
        let mut inner = self.lock();
        let span = append(&mut inner, REC_MODEL, &payload)?;
        inner.index.models.insert(rec.model_id, span);
        Ok(())
    }

    fn models(&self) -> Result<Vec<ModelRecord>, StoreError> {
        let mut inner = self.lock();
        let spans: Vec<Span> = inner.index.models.values().copied().collect();
        let mut out = Vec::with_capacity(spans.len());
        for span in spans {
            let payload = read_span(&mut inner.file, span)?;
            out.push(ModelRecord::decode(&payload).map_err(StoreError::Decode)?);
        }
        Ok(out)
    }

    fn put_flows(&self, rec: &FlowsRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        rec.encode(&mut payload);
        let mut inner = self.lock();
        let span = append(&mut inner, REC_FLOWS, &payload)?;
        inner
            .index
            .flows
            .insert((rec.graph_id, rec.target, rec.layers, rec.max_flows), span);
        Ok(())
    }

    fn flows(&self) -> Result<Vec<FlowsRecord>, StoreError> {
        let mut inner = self.lock();
        let mut keys: Vec<_> = inner.index.flows.keys().copied().collect();
        keys.sort_unstable_by_key(|&(g, t, l, m)| (g, target_order(t), l, m));
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let span = inner.index.flows[&key];
            let payload = read_span(&mut inner.file, span)?;
            out.push(FlowsRecord::decode(&payload).map_err(StoreError::Decode)?);
        }
        Ok(out)
    }

    fn put_explanation(&self, rec: &ExplanationRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        rec.encode(&mut payload);
        let mut inner = self.lock();
        let span = append(&mut inner, REC_EXPLANATION, &payload)?;
        inner.index.summaries.insert(rec.job_id, rec.summary());
        if rec.mask.is_some() {
            inner.index.masks.insert(rec.key, rec.job_id);
        }
        inner.index.explanations.insert(rec.job_id, span);
        Ok(())
    }

    fn explanation(&self, job_id: u64) -> Result<Option<ExplanationRecord>, StoreError> {
        let mut inner = self.lock();
        let Some(span) = inner.index.explanations.get(&job_id).copied() else {
            return Ok(None);
        };
        let payload = read_span(&mut inner.file, span)?;
        Ok(Some(
            ExplanationRecord::decode(&payload).map_err(StoreError::Decode)?,
        ))
    }

    fn list_explanations(&self) -> Result<Vec<ExplanationSummary>, StoreError> {
        Ok(self.lock().index.summaries.values().copied().collect())
    }

    fn newest_mask(&self, key: &MaskKey) -> Result<Option<MaskHit>, StoreError> {
        let mut inner = self.lock();
        let Some(job_id) = inner.index.masks.get(key).copied() else {
            return Ok(None);
        };
        let Some(span) = inner.index.explanations.get(&job_id).copied() else {
            return Ok(None);
        };
        let payload = read_span(&mut inner.file, span)?;
        let rec = ExplanationRecord::decode(&payload).map_err(StoreError::Decode)?;
        Ok(rec.mask.map(|mask| MaskHit {
            job_id: rec.job_id,
            model_fingerprint: rec.model_fingerprint,
            mask,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn compact_path_appends_suffix() {
        assert_eq!(
            compact_path(Path::new("/tmp/x/store.log")),
            Path::new("/tmp/x/store.log.compact")
        );
    }
}
