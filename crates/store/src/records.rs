//! Record vocabulary and codecs for the persistent store.
//!
//! Three record kinds flow through the log: model registrations
//! ([`ModelRecord`]), capped flow enumerations ([`FlowsRecord`]), and
//! finished explanations ([`ExplanationRecord`] — scores, degradation, the
//! phase summary, and the converged mask that seeds warm-started
//! re-optimisation). Every codec is built on the same hand-rolled
//! little-endian primitives as the network wire format
//! ([`revelio_core::wire`]): length prefixes are validated against the
//! bytes actually present *before* any allocation, and every decode ends
//! with an [`expect_end`](WireReader::expect_end) tripwire at the record
//! boundary.

use revelio_core::wire::{
    put_bool, put_f32s, put_u32, put_u32s, put_u64, put_u8, WireDecodeError, WireReader,
};
use revelio_core::Degradation;
use revelio_gnn::{GnnConfig, GnnKind, Task};
use revelio_graph::Target;

/// A registered model: wire-assigned id, content fingerprint, and the full
/// architecture + parameter state needed to re-materialise it on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Registration index (the wire protocol's model id). Re-registering
    /// the same id supersedes the earlier record.
    pub model_id: u32,
    /// [`fingerprint_model`] of `(config, state)`; warm-start lookups
    /// reject masks recorded under a different fingerprint.
    pub fingerprint: u64,
    /// Architecture hyperparameters.
    pub config: GnnConfig,
    /// Flattened parameter tensors, in the model's canonical order.
    pub state: Vec<Vec<f32>>,
}

/// A capped flow enumeration, persisted as its deterministic layer-edge
/// table. The incidence matrices are *not* stored — they are a pure
/// function of the table and are rebuilt on recovery via
/// [`FlowIndex::from_parts`](revelio_graph::FlowIndex::from_parts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowsRecord {
    /// Caller-assigned graph (content) id.
    pub graph_id: u64,
    /// Explained target.
    pub target: Target,
    /// GNN layer count `L` the enumeration was built for.
    pub layers: u32,
    /// The enumeration cap the index was built under (part of the cache
    /// key: different caps are different artifacts).
    pub max_flows: u64,
    /// Layer-edge count `|E|` of the message-passing view — the incidence
    /// row dimension.
    pub layer_edge_count: u32,
    /// Flattened `[num_flows, layers]` layer-edge table.
    pub flow_edges: Vec<u32>,
    /// Flows dropped by the cap (`0` = complete enumeration).
    pub dropped: u64,
}

/// The key a converged mask is stored (and warm-start looked up) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskKey {
    /// Wire model id.
    pub model_id: u32,
    /// Caller-assigned graph id.
    pub graph_id: u64,
    /// Explained target.
    pub target: Target,
    /// GNN layer count `L`.
    pub layers: u32,
}

/// A converged mask state: everything needed to re-seed Eq. 7's edge-mask
/// training from where a previous run finished.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredMask {
    /// Raw (pre-squash) mask parameters, one per selected flow.
    pub mask_params: Vec<f32>,
    /// Raw layer-weight parameters, one vector per weighting tensor.
    pub layer_weights: Vec<Vec<f32>>,
    /// The flow ids the mask parameters are aligned with; warm-start is
    /// rejected unless the new run selects the identical set.
    pub selected: Vec<u32>,
}

/// Wall-clock phase summary of the job that produced an explanation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Microseconds spent queued before a worker picked the job up.
    pub queue_us: u64,
    /// Microseconds spent in preparation (model materialisation, flow
    /// enumeration / cache probe).
    pub prep_us: u64,
    /// Microseconds inside the explainer itself.
    pub explain_us: u64,
}

/// A finished explanation: scores, degradation record, phase summary, and
/// (for mask-learning methods) the converged mask.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationRecord {
    /// Runtime job id — unique across restarts because the runtime resumes
    /// numbering above the largest stored id.
    pub job_id: u64,
    /// The warm-start key this record answers for.
    pub key: MaskKey,
    /// Fingerprint of the model the job ran against (staleness guard: a
    /// re-registered model with different weights invalidates the mask).
    pub model_fingerprint: u64,
    /// Per-original-edge importance scores.
    pub edge_scores: Vec<f32>,
    /// Per-layer scores over layer edges, when the method distinguishes
    /// layers.
    pub layer_edge_scores: Option<Vec<Vec<f32>>>,
    /// Flow-level scores, for flow-based methods.
    pub flow_scores: Option<Vec<f32>>,
    /// Budget-driven degradation the job reported.
    pub degradation: Degradation,
    /// Phase timing summary.
    pub phases: PhaseSummary,
    /// Converged mask state, when the explainer exposes one.
    pub mask: Option<StoredMask>,
}

/// The in-memory listing entry for one stored explanation (no score
/// payloads — those stay on disk until fetched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplanationSummary {
    /// Job id the full record is fetched by.
    pub job_id: u64,
    /// The record's warm-start key.
    pub key: MaskKey,
    /// Whether the stored answer was degraded.
    pub degraded: bool,
    /// Whether the record carries a converged mask.
    pub has_mask: bool,
}

/// A successful [`newest_mask`](crate::Store::newest_mask) lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskHit {
    /// The job that recorded the mask.
    pub job_id: u64,
    /// Fingerprint of the model that job ran against.
    pub model_fingerprint: u64,
    /// The converged mask state.
    pub mask: StoredMask,
}

/// FNV-1a 64 content fingerprint of a model's architecture and parameters.
///
/// Both registration (when persisting) and warm-start lookup (when
/// guarding) hash the same canonical byte stream: the config's integer
/// fields followed by every parameter's IEEE-754 bits in state order.
pub fn fingerprint_model(config: &GnnConfig, state: &[Vec<f32>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&[kind_tag(config.kind), task_tag(config.task)]);
    for v in [
        config.in_dim as u64,
        config.hidden_dim as u64,
        config.num_classes as u64,
        config.num_layers as u64,
        config.heads as u64,
        config.seed,
    ] {
        eat(&v.to_le_bytes());
    }
    for tensor in state {
        eat(&(tensor.len() as u64).to_le_bytes());
        for &x in tensor {
            eat(&x.to_bits().to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Shared sub-codecs.
// ---------------------------------------------------------------------------

fn kind_tag(kind: GnnKind) -> u8 {
    match kind {
        GnnKind::Gcn => 0,
        GnnKind::Gin => 1,
        GnnKind::Gat => 2,
    }
}

fn task_tag(task: Task) -> u8 {
    match task {
        Task::NodeClassification => 0,
        Task::GraphClassification => 1,
    }
}

fn put_target(out: &mut Vec<u8>, target: Target) {
    match target {
        Target::Graph => put_u8(out, 0),
        Target::Node(n) => {
            put_u8(out, 1);
            put_u64(out, n as u64);
        }
    }
}

fn read_target(r: &mut WireReader<'_>) -> Result<Target, WireDecodeError> {
    match r.u8()? {
        0 => Ok(Target::Graph),
        1 => Ok(Target::Node(r.u64()? as usize)),
        _ => Err(WireDecodeError::Invalid("target tag")),
    }
}

fn put_config(out: &mut Vec<u8>, config: &GnnConfig) {
    put_u8(out, kind_tag(config.kind));
    put_u8(out, task_tag(config.task));
    put_u32(out, config.in_dim as u32);
    put_u32(out, config.hidden_dim as u32);
    put_u32(out, config.num_classes as u32);
    put_u32(out, config.num_layers as u32);
    put_u32(out, config.heads as u32);
    put_u64(out, config.seed);
}

fn read_config(r: &mut WireReader<'_>) -> Result<GnnConfig, WireDecodeError> {
    let kind = match r.u8()? {
        0 => GnnKind::Gcn,
        1 => GnnKind::Gin,
        2 => GnnKind::Gat,
        _ => return Err(WireDecodeError::Invalid("gnn kind tag")),
    };
    let task = match r.u8()? {
        0 => Task::NodeClassification,
        1 => Task::GraphClassification,
        _ => return Err(WireDecodeError::Invalid("task tag")),
    };
    Ok(GnnConfig {
        kind,
        task,
        in_dim: r.u32()? as usize,
        hidden_dim: r.u32()? as usize,
        num_classes: r.u32()? as usize,
        num_layers: r.u32()? as usize,
        heads: r.u32()? as usize,
        seed: r.u64()?,
    })
}

fn put_f32_lists(out: &mut Vec<u8>, lists: &[Vec<f32>]) {
    put_u32(out, lists.len() as u32);
    for list in lists {
        put_f32s(out, list);
    }
}

/// Reads a `u32`-counted sequence of `f32` vectors, bounding the count by
/// the bytes actually present (each vector needs at least its own 4-byte
/// length prefix) before any allocation.
fn read_f32_lists(r: &mut WireReader<'_>) -> Result<Vec<Vec<f32>>, WireDecodeError> {
    let n = r.u32()? as usize;
    let floor = n
        .checked_mul(4)
        .ok_or(WireDecodeError::Invalid("list count overflows usize"))?;
    if r.remaining() < floor {
        return Err(WireDecodeError::Truncated {
            needed: floor,
            remaining: r.remaining(),
        });
    }
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        lists.push(r.f32s()?);
    }
    Ok(lists)
}

fn put_opt_f32s(out: &mut Vec<u8>, vs: Option<&[f32]>) {
    match vs {
        Some(vs) => {
            put_bool(out, true);
            put_f32s(out, vs);
        }
        None => put_bool(out, false),
    }
}

fn read_opt_f32s(r: &mut WireReader<'_>) -> Result<Option<Vec<f32>>, WireDecodeError> {
    Ok(if r.bool()? { Some(r.f32s()?) } else { None })
}

// ---------------------------------------------------------------------------
// Record codecs.
// ---------------------------------------------------------------------------

impl ModelRecord {
    /// Appends the record payload to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.model_id);
        put_u64(out, self.fingerprint);
        put_config(out, &self.config);
        put_f32_lists(out, &self.state);
    }

    /// Decodes a payload written by [`ModelRecord::encode`], consuming the
    /// whole buffer.
    pub fn decode(bytes: &[u8]) -> Result<ModelRecord, WireDecodeError> {
        let mut r = WireReader::new(bytes);
        let rec = ModelRecord {
            model_id: r.u32()?,
            fingerprint: r.u64()?,
            config: read_config(&mut r)?,
            state: read_f32_lists(&mut r)?,
        };
        r.expect_end()?;
        Ok(rec)
    }
}

impl MaskKey {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.model_id);
        put_u64(out, self.graph_id);
        put_target(out, self.target);
        put_u32(out, self.layers);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<MaskKey, WireDecodeError> {
        Ok(MaskKey {
            model_id: r.u32()?,
            graph_id: r.u64()?,
            target: read_target(r)?,
            layers: r.u32()?,
        })
    }
}

impl FlowsRecord {
    /// Appends the record payload to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.graph_id);
        put_target(out, self.target);
        put_u32(out, self.layers);
        put_u64(out, self.max_flows);
        put_u32(out, self.layer_edge_count);
        put_u32s(out, &self.flow_edges);
        put_u64(out, self.dropped);
    }

    /// Decodes a payload written by [`FlowsRecord::encode`], consuming the
    /// whole buffer. The layer-edge table must divide evenly into `layers`
    /// and reference only edges below `layer_edge_count`.
    pub fn decode(bytes: &[u8]) -> Result<FlowsRecord, WireDecodeError> {
        let mut r = WireReader::new(bytes);
        let rec = FlowsRecord {
            graph_id: r.u64()?,
            target: read_target(&mut r)?,
            layers: r.u32()?,
            max_flows: r.u64()?,
            layer_edge_count: r.u32()?,
            flow_edges: r.u32s()?,
            dropped: r.u64()?,
        };
        r.expect_end()?;
        if rec.layers == 0 {
            return Err(WireDecodeError::Invalid("flow record with zero layers"));
        }
        if !rec.flow_edges.len().is_multiple_of(rec.layers as usize) {
            return Err(WireDecodeError::Invalid(
                "flow edge table not a multiple of the layer count",
            ));
        }
        if rec.flow_edges.iter().any(|&e| e >= rec.layer_edge_count) {
            return Err(WireDecodeError::Invalid(
                "flow edge id out of incidence range",
            ));
        }
        Ok(rec)
    }
}

impl StoredMask {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f32s(out, &self.mask_params);
        put_f32_lists(out, &self.layer_weights);
        put_u32s(out, &self.selected);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<StoredMask, WireDecodeError> {
        Ok(StoredMask {
            mask_params: r.f32s()?,
            layer_weights: read_f32_lists(r)?,
            selected: r.u32s()?,
        })
    }
}

impl ExplanationRecord {
    /// Appends the record payload to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.job_id);
        self.key.encode(out);
        put_u64(out, self.model_fingerprint);
        put_f32s(out, &self.edge_scores);
        match &self.layer_edge_scores {
            Some(lists) => {
                put_bool(out, true);
                put_f32_lists(out, lists);
            }
            None => put_bool(out, false),
        }
        put_opt_f32s(out, self.flow_scores.as_deref());
        self.degradation.encode(out);
        put_u64(out, self.phases.queue_us);
        put_u64(out, self.phases.prep_us);
        put_u64(out, self.phases.explain_us);
        match &self.mask {
            Some(mask) => {
                put_bool(out, true);
                mask.encode(out);
            }
            None => put_bool(out, false),
        }
    }

    /// Decodes a payload written by [`ExplanationRecord::encode`],
    /// consuming the whole buffer. A present mask must align with its own
    /// selection (one parameter per selected flow).
    pub fn decode(bytes: &[u8]) -> Result<ExplanationRecord, WireDecodeError> {
        let mut r = WireReader::new(bytes);
        let job_id = r.u64()?;
        let key = MaskKey::decode(&mut r)?;
        let model_fingerprint = r.u64()?;
        let edge_scores = r.f32s()?;
        let layer_edge_scores = if r.bool()? {
            Some(read_f32_lists(&mut r)?)
        } else {
            None
        };
        let flow_scores = read_opt_f32s(&mut r)?;
        let degradation = Degradation::decode(&mut r)?;
        let phases = PhaseSummary {
            queue_us: r.u64()?,
            prep_us: r.u64()?,
            explain_us: r.u64()?,
        };
        let mask = if r.bool()? {
            Some(StoredMask::decode(&mut r)?)
        } else {
            None
        };
        r.expect_end()?;
        if let Some(m) = &mask {
            if m.mask_params.len() != m.selected.len() {
                return Err(WireDecodeError::Invalid(
                    "mask parameters misaligned with selection",
                ));
            }
        }
        Ok(ExplanationRecord {
            job_id,
            key,
            model_fingerprint,
            edge_scores,
            layer_edge_scores,
            flow_scores,
            degradation,
            phases,
            mask,
        })
    }

    /// The in-memory listing entry for this record.
    pub fn summary(&self) -> ExplanationSummary {
        ExplanationSummary {
            job_id: self.job_id,
            key: self.key,
            degraded: self.degradation.is_degraded(),
            has_mask: self.mask.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GnnConfig {
        GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 4, 3, 11)
    }

    #[test]
    fn model_record_round_trips() {
        let rec = ModelRecord {
            model_id: 2,
            fingerprint: fingerprint_model(&config(), &[vec![1.0, -2.5]]),
            config: config(),
            state: vec![vec![1.0, -2.5], vec![]],
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(ModelRecord::decode(&buf), Ok(rec));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let base = fingerprint_model(&config(), &[vec![1.0, 2.0]]);
        assert_eq!(base, fingerprint_model(&config(), &[vec![1.0, 2.0]]));
        assert_ne!(base, fingerprint_model(&config(), &[vec![1.0, 2.5]]));
        let mut other = config();
        other.seed = 12;
        assert_ne!(base, fingerprint_model(&other, &[vec![1.0, 2.0]]));
        // Tensor boundaries are part of the stream: [1,2] != [1],[2].
        assert_ne!(base, fingerprint_model(&config(), &[vec![1.0], vec![2.0]]));
    }

    #[test]
    fn flows_record_round_trips_and_validates() {
        let rec = FlowsRecord {
            graph_id: 9,
            target: Target::Node(2),
            layers: 2,
            max_flows: 100,
            layer_edge_count: 5,
            flow_edges: vec![0, 1, 4, 2],
            dropped: 3,
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(FlowsRecord::decode(&buf), Ok(rec.clone()));

        let mut ragged = rec.clone();
        ragged.flow_edges = vec![0, 1, 2];
        let mut buf = Vec::new();
        ragged.encode(&mut buf);
        assert!(FlowsRecord::decode(&buf).is_err());

        let mut out_of_range = rec;
        out_of_range.flow_edges = vec![0, 5];
        let mut buf = Vec::new();
        out_of_range.encode(&mut buf);
        assert!(FlowsRecord::decode(&buf).is_err());
    }

    #[test]
    fn explanation_record_round_trips() {
        let rec = ExplanationRecord {
            job_id: 41,
            key: MaskKey {
                model_id: 0,
                graph_id: 7,
                target: Target::Node(2),
                layers: 2,
            },
            model_fingerprint: 0xDEAD_BEEF,
            edge_scores: vec![0.25, 0.75],
            layer_edge_scores: Some(vec![vec![0.1, 0.2], vec![0.3, 0.4]]),
            flow_scores: Some(vec![0.9, 0.1, 0.5]),
            degradation: Degradation {
                deadline_hit: false,
                epochs_run: 30,
                epochs_planned: 30,
                flows_dropped: 0,
            },
            phases: PhaseSummary {
                queue_us: 5,
                prep_us: 14,
                explain_us: 2000,
            },
            mask: Some(StoredMask {
                mask_params: vec![0.4, -0.1, 2.0],
                layer_weights: vec![vec![0.5]],
                selected: vec![0, 1, 2],
            }),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(ExplanationRecord::decode(&buf), Ok(rec.clone()));
        let s = rec.summary();
        assert_eq!(s.job_id, 41);
        assert!(s.has_mask);
        assert!(!s.degraded);
    }

    #[test]
    fn misaligned_mask_is_rejected() {
        let mut buf = Vec::new();
        ExplanationRecord {
            job_id: 1,
            key: MaskKey {
                model_id: 0,
                graph_id: 0,
                target: Target::Graph,
                layers: 1,
            },
            model_fingerprint: 0,
            edge_scores: vec![],
            layer_edge_scores: None,
            flow_scores: None,
            degradation: Degradation::default(),
            phases: PhaseSummary::default(),
            mask: Some(StoredMask {
                mask_params: vec![0.1],
                layer_weights: vec![],
                selected: vec![0, 1],
            }),
        }
        .encode(&mut buf);
        assert_eq!(
            ExplanationRecord::decode(&buf),
            Err(WireDecodeError::Invalid(
                "mask parameters misaligned with selection"
            ))
        );
    }

    #[test]
    fn hostile_list_count_fails_before_allocating() {
        // A model record whose state claims 2^31 tensors but carries none.
        let mut buf = Vec::new();
        put_u32(&mut buf, 3);
        put_u64(&mut buf, 0);
        put_config(&mut buf, &config());
        put_u32(&mut buf, u32::MAX / 2);
        assert!(matches!(
            ModelRecord::decode(&buf),
            Err(WireDecodeError::Truncated { .. })
        ));
    }
}
