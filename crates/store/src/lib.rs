//! `revelio-store` — a persistent explanation store with crash recovery.
//!
//! Everything the serving stack knows — registered models, capped flow
//! enumerations, finished explanations with their converged masks — used
//! to die with the process. This crate persists it: a trait-abstracted
//! [`Store`] over an append-only single-file log backend ([`LogStore`])
//! with CRC-checked length-prefixed records, generation-numbered
//! compaction, and an in-memory index rebuilt on open.
//!
//! The payoff is twofold:
//!
//! * **Crash-restart recovery** — the runtime re-registers stored models
//!   in their original order (wire ids stay stable), pre-warms its
//!   artifact cache from stored flow enumerations, and resumes job-id
//!   numbering above the largest stored id, so pre-restart explanations
//!   stay fetchable.
//! * **Warm-started mask optimisation** — Eq. 7's edge-mask training is
//!   seeded from the newest stored converged mask for the same
//!   `(model, graph, target, L)` key, guarded by a model fingerprint and
//!   an exact flow-selection match, shrinking the dominant `optimize`
//!   phase on repeat traffic.
//!
//! Interior mutability rides the [`revelio_check::sync`] facade, so the
//! store is explorable by the workspace's deterministic model checker
//! under `--features check` like every other concurrent structure here.
//!
//! ```no_run
//! use revelio_store::{LogStore, Store};
//!
//! let store = LogStore::open("/var/lib/revelio/store.log").unwrap();
//! for summary in store.list_explanations().unwrap() {
//!     println!("job {} degraded={}", summary.job_id, summary.degraded);
//! }
//! # let _ = store.compact();
//! ```

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod log;
mod records;

use std::fmt;

pub use crate::log::{
    crc32, CompactionStats, LogStore, RecoveryReport, FILE_MAGIC, FORMAT_VERSION, HEADER_LEN,
    MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
pub use crate::records::{
    fingerprint_model, ExplanationRecord, ExplanationSummary, FlowsRecord, MaskHit, MaskKey,
    ModelRecord, PhaseSummary, StoredMask,
};

/// Error raised by store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is not (or is no longer) a valid store log. Unlike a torn
    /// tail — which recovery silently truncates — this means bytes that
    /// *claim* to be valid do not hold up: bad magic, an unsupported
    /// format version, or a CRC-valid record that does not decode.
    Corrupt {
        /// Byte offset of the offending region.
        offset: u64,
        /// What failed to hold.
        what: &'static str,
    },
    /// An indexed record failed to decode on read-back.
    Decode(revelio_core::WireDecodeError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { offset, what } => {
                write!(f, "corrupt store at byte {offset}: {what}")
            }
            StoreError::Decode(e) => write!(f, "stored record failed to decode: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
            StoreError::Decode(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// The persistence abstraction the runtime writes behind and recovers
/// from. All methods take `&self`: implementations are internally
/// synchronised and shared across worker threads behind an `Arc`.
pub trait Store: Send + Sync {
    /// Persists (or supersedes) a model registration.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the record cannot be made durable.
    fn put_model(&self, rec: &ModelRecord) -> Result<(), StoreError>;

    /// All live model records, in ascending `model_id` order — the order
    /// recovery re-registers them in.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if a stored record cannot be read back.
    fn models(&self) -> Result<Vec<ModelRecord>, StoreError>;

    /// Persists (or supersedes) a capped flow enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the record cannot be made durable.
    fn put_flows(&self, rec: &FlowsRecord) -> Result<(), StoreError>;

    /// All live flow records, in a deterministic key order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if a stored record cannot be read back.
    fn flows(&self) -> Result<Vec<FlowsRecord>, StoreError>;

    /// Persists a finished explanation.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the record cannot be made durable.
    fn put_explanation(&self, rec: &ExplanationRecord) -> Result<(), StoreError>;

    /// The stored explanation for `job_id`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the stored record cannot be read back.
    fn explanation(&self, job_id: u64) -> Result<Option<ExplanationRecord>, StoreError>;

    /// Summaries of every stored explanation, in ascending job-id order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the index cannot be consulted.
    fn list_explanations(&self) -> Result<Vec<ExplanationSummary>, StoreError>;

    /// The newest stored converged mask for `key`, with the fingerprint of
    /// the model it converged against (the caller's staleness guard).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the stored record cannot be read back.
    fn newest_mask(&self, key: &MaskKey) -> Result<Option<MaskHit>, StoreError>;
}
