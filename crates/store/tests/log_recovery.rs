//! Crash-recovery and compaction tests for the append-only log backend.
//!
//! The central scenario is satellite-grade: kill the process mid-append
//! (simulated by truncating the file inside the last record), reopen, and
//! assert the store recovers to the last *complete* record with the torn
//! tail ignored and physically dropped.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use revelio_core::Degradation;
use revelio_gnn::{GnnConfig, GnnKind, Task};
use revelio_graph::Target;
use revelio_store::{
    fingerprint_model, ExplanationRecord, FlowsRecord, LogStore, MaskKey, ModelRecord,
    PhaseSummary, Store, StoreError, StoredMask, HEADER_LEN,
};

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

/// A unique throwaway log path per test invocation.
fn temp_log(tag: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "revelio-store-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

fn config() -> GnnConfig {
    GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 4, 3, 7)
}

fn model_record(model_id: u32, state: Vec<Vec<f32>>) -> ModelRecord {
    ModelRecord {
        model_id,
        fingerprint: fingerprint_model(&config(), &state),
        config: config(),
        state,
    }
}

fn explanation_record(job_id: u64, graph_id: u64) -> ExplanationRecord {
    ExplanationRecord {
        job_id,
        key: MaskKey {
            model_id: 0,
            graph_id,
            target: Target::Node(2),
            layers: 2,
        },
        model_fingerprint: 99,
        edge_scores: vec![0.5, 0.25, 0.125],
        layer_edge_scores: None,
        flow_scores: Some(vec![0.9, 0.1]),
        degradation: Degradation::default(),
        phases: PhaseSummary {
            queue_us: 1,
            prep_us: 2,
            explain_us: 3,
        },
        mask: Some(StoredMask {
            mask_params: vec![0.4, -0.2],
            layer_weights: vec![vec![0.0]],
            selected: vec![0, 1],
        }),
    }
}

#[test]
fn reopen_rebuilds_the_index() {
    let path = temp_log("reopen");
    {
        let store = LogStore::open(&path).unwrap();
        store
            .put_model(&model_record(0, vec![vec![1.0, 2.0]]))
            .unwrap();
        store.put_explanation(&explanation_record(5, 77)).unwrap();
        store
            .put_flows(&FlowsRecord {
                graph_id: 77,
                target: Target::Node(2),
                layers: 2,
                max_flows: 1000,
                layer_edge_count: 4,
                flow_edges: vec![0, 1, 2, 3],
                dropped: 0,
            })
            .unwrap();
    }
    let store = LogStore::open(&path).unwrap();
    assert_eq!(store.recovery().records, 3);
    assert_eq!(store.recovery().truncated_bytes, 0);
    let models = store.models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0], model_record(0, vec![vec![1.0, 2.0]]));
    assert_eq!(store.flows().unwrap().len(), 1);
    let back = store.explanation(5).unwrap().unwrap();
    assert_eq!(back, explanation_record(5, 77));
    assert!(store.explanation(6).unwrap().is_none());
    let hit = store
        .newest_mask(&explanation_record(5, 77).key)
        .unwrap()
        .unwrap();
    assert_eq!(hit.job_id, 5);
    assert_eq!(hit.model_fingerprint, 99);
    assert_eq!(hit.mask.selected, vec![0, 1]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_is_ignored_and_truncated() {
    let path = temp_log("torn");
    let intact_len;
    {
        let store = LogStore::open(&path).unwrap();
        store.put_explanation(&explanation_record(1, 10)).unwrap();
        intact_len = std::fs::metadata(&path).unwrap().len();
        store.put_explanation(&explanation_record(2, 11)).unwrap();
    }
    // Simulate a crash mid-append of record 2: keep its record header and
    // part of its payload.
    let full_len = std::fs::metadata(&path).unwrap().len();
    let torn_len = intact_len + (full_len - intact_len) / 2;
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(torn_len).unwrap();
    drop(file);

    let store = LogStore::open(&path).unwrap();
    let report = store.recovery();
    assert_eq!(report.records, 1, "only the complete record survives");
    assert_eq!(report.truncated_bytes, torn_len - intact_len);
    assert!(store.explanation(1).unwrap().is_some());
    assert!(store.explanation(2).unwrap().is_none(), "torn tail ignored");
    // The torn bytes are physically dropped so new appends extend a clean
    // prefix.
    assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
    store.put_explanation(&explanation_record(3, 12)).unwrap();
    drop(store);
    let store = LogStore::open(&path).unwrap();
    assert_eq!(store.recovery().records, 2);
    assert!(store.explanation(3).unwrap().is_some());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tail_truncated_inside_the_record_header_recovers() {
    let path = temp_log("torn-header");
    let intact_len;
    {
        let store = LogStore::open(&path).unwrap();
        store.put_explanation(&explanation_record(1, 10)).unwrap();
        intact_len = std::fs::metadata(&path).unwrap().len();
        store.put_explanation(&explanation_record(2, 11)).unwrap();
    }
    // Crash after writing only 3 bytes of the next record header.
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(intact_len + 3).unwrap();
    drop(file);
    let store = LogStore::open(&path).unwrap();
    assert_eq!(store.recovery().records, 1);
    assert_eq!(store.recovery().truncated_bytes, 3);
    assert!(store.explanation(1).unwrap().is_some());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_mid_file_record_stops_replay_at_the_last_good_prefix() {
    let path = temp_log("corrupt-mid");
    let first_end;
    {
        let store = LogStore::open(&path).unwrap();
        store.put_explanation(&explanation_record(1, 10)).unwrap();
        first_end = std::fs::metadata(&path).unwrap().len();
        store.put_explanation(&explanation_record(2, 11)).unwrap();
        store.put_explanation(&explanation_record(3, 12)).unwrap();
    }
    // Flip one payload byte of record 2 (mid-file, not the tail).
    let mut bytes = std::fs::read(&path).unwrap();
    let target = first_end as usize + 9 + 4; // past record 2's header
    bytes[target] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let store = LogStore::open(&path).unwrap();
    assert_eq!(store.recovery().records, 1, "replay stops at the bad CRC");
    assert!(store.recovery().truncated_bytes > 0);
    assert!(store.explanation(1).unwrap().is_some());
    assert!(store.explanation(2).unwrap().is_none());
    assert!(store.explanation(3).unwrap().is_none());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn non_store_file_is_a_typed_error_not_a_clobber() {
    let path = temp_log("foreign");
    std::fs::write(
        &path,
        b"definitely not a store log, much longer than a header",
    )
    .unwrap();
    match LogStore::open(&path) {
        Err(StoreError::Corrupt { what, .. }) => assert_eq!(what, "bad store magic"),
        other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
    }
    // The foreign file must be untouched.
    assert!(std::fs::read(&path).unwrap().starts_with(b"definitely"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn supersede_keeps_only_the_newest_record_per_key() {
    let path = temp_log("supersede");
    let store = LogStore::open(&path).unwrap();
    store.put_model(&model_record(0, vec![vec![1.0]])).unwrap();
    store.put_model(&model_record(0, vec![vec![2.0]])).unwrap();
    let models = store.models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].state, vec![vec![2.0]]);

    // Two explanations under the same mask key: the newer mask wins.
    let mut a = explanation_record(1, 10);
    a.mask.as_mut().unwrap().mask_params = vec![1.0, 1.0];
    let mut b = explanation_record(2, 10);
    b.mask.as_mut().unwrap().mask_params = vec![2.0, 2.0];
    store.put_explanation(&a).unwrap();
    store.put_explanation(&b).unwrap();
    let hit = store.newest_mask(&a.key).unwrap().unwrap();
    assert_eq!(hit.job_id, 2);
    assert_eq!(hit.mask.mask_params, vec![2.0, 2.0]);
    // Both full records remain fetchable.
    assert_eq!(store.list_explanations().unwrap().len(), 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_drops_superseded_records_and_bumps_the_generation() {
    let path = temp_log("compact");
    let store = LogStore::open(&path).unwrap();
    for i in 0..4 {
        store
            .put_model(&model_record(0, vec![vec![i as f32]]))
            .unwrap();
    }
    store.put_explanation(&explanation_record(1, 10)).unwrap();
    assert_eq!(store.recovery().generation, 1);
    let bytes_before = std::fs::metadata(&path).unwrap().len();

    let stats = store.compact().unwrap();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.records_before, 5);
    assert_eq!(stats.records_after, 2, "three superseded models dropped");
    assert!(stats.bytes_after < stats.bytes_before);
    assert!(std::fs::metadata(&path).unwrap().len() < bytes_before);

    // The surviving state is the newest, both live and across reopen.
    assert_eq!(store.models().unwrap()[0].state, vec![vec![3.0]]);
    assert!(store.explanation(1).unwrap().is_some());
    drop(store);
    let store = LogStore::open(&path).unwrap();
    assert_eq!(store.recovery().generation, 2);
    assert_eq!(store.recovery().records, 2);
    assert_eq!(store.models().unwrap()[0].state, vec![vec![3.0]]);
    assert_eq!(
        store.explanation(1).unwrap().unwrap(),
        explanation_record(1, 10)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_is_idempotent_on_a_live_only_log() {
    let path = temp_log("compact-idem");
    let store = LogStore::open(&path).unwrap();
    store.put_model(&model_record(0, vec![vec![1.0]])).unwrap();
    store.put_explanation(&explanation_record(1, 10)).unwrap();
    let first = store.compact().unwrap();
    assert_eq!(first.records_before, 2);
    assert_eq!(first.records_after, 2);
    let second = store.compact().unwrap();
    assert_eq!(second.generation, 3);
    assert_eq!(second.bytes_after, first.bytes_after);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn appends_after_recovery_and_compaction_stay_readable() {
    let path = temp_log("mixed");
    {
        let store = LogStore::open(&path).unwrap();
        store.put_model(&model_record(0, vec![vec![1.0]])).unwrap();
        store.put_explanation(&explanation_record(1, 10)).unwrap();
        store.compact().unwrap();
        store.put_explanation(&explanation_record(2, 11)).unwrap();
    }
    let store = LogStore::open(&path).unwrap();
    let jobs: Vec<u64> = store
        .list_explanations()
        .unwrap()
        .iter()
        .map(|s| s.job_id)
        .collect();
    assert_eq!(jobs, vec![1, 2]);
    assert_eq!(store.recovery().generation, 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_store_lists_nothing() {
    let path = temp_log("empty");
    let store = LogStore::open(&path).unwrap();
    assert!(store.models().unwrap().is_empty());
    assert!(store.flows().unwrap().is_empty());
    assert!(store.list_explanations().unwrap().is_empty());
    assert!(store
        .newest_mask(&MaskKey {
            model_id: 0,
            graph_id: 0,
            target: Target::Graph,
            layers: 1,
        })
        .unwrap()
        .is_none());
    assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
    std::fs::remove_file(&path).unwrap();
}
