//! Property tests for the store record codecs, mirroring the wire-codec
//! suite: round-trips on arbitrary records, and rejection (never a panic,
//! never silent corruption) for truncated, corrupted, and
//! hostile-length payloads.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use revelio_core::wire::put_u32;
use revelio_core::Degradation;
use revelio_gnn::{GnnConfig, GnnKind, Task};
use revelio_graph::Target;
use revelio_store::{
    fingerprint_model, ExplanationRecord, FlowsRecord, MaskKey, ModelRecord, PhaseSummary,
    StoredMask,
};

fn config_from(bits: u64) -> GnnConfig {
    GnnConfig {
        kind: match bits % 3 {
            0 => GnnKind::Gcn,
            1 => GnnKind::Gin,
            _ => GnnKind::Gat,
        },
        task: if bits & 4 == 0 {
            Task::NodeClassification
        } else {
            Task::GraphClassification
        },
        in_dim: (bits % 7 + 1) as usize,
        hidden_dim: (bits % 13 + 1) as usize,
        num_classes: (bits % 5 + 2) as usize,
        num_layers: (bits % 3 + 1) as usize,
        heads: (bits % 4 + 1) as usize,
        seed: bits,
    }
}

fn target_from(bits: u64) -> Target {
    if bits & 1 == 0 {
        Target::Graph
    } else {
        Target::Node((bits >> 1) as usize)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_record_round_trips_bit_exact(
        bits in 0u64..u64::MAX,
        model_id in 0u32..u32::MAX,
        state in prop::collection::vec(
            prop::collection::vec(-1.0e20f32..1.0e20, 0..12), 0..5),
    ) {
        let rec = ModelRecord {
            model_id,
            fingerprint: fingerprint_model(&config_from(bits), &state),
            config: config_from(bits),
            state: state.clone(),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let back = ModelRecord::decode(&buf).unwrap();
        prop_assert_eq!(&back.config, &rec.config);
        prop_assert_eq!(back.model_id, rec.model_id);
        prop_assert_eq!(back.fingerprint, rec.fingerprint);
        let bits_of = |s: &[Vec<f32>]| s
            .iter()
            .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
            .collect::<Vec<_>>();
        prop_assert_eq!(bits_of(&back.state), bits_of(&rec.state));
    }

    #[test]
    fn flows_record_round_trips(
        graph_id in 0u64..u64::MAX,
        tbits in 0u64..1_000,
        layers in 1u32..4,
        max_flows in 1u64..1_000_000,
        dropped in 0u64..1_000,
        raw_edges in prop::collection::vec(0u32..6, 0..24),
        layer_edge_count in 6u32..32,
    ) {
        // Trim the table to a whole number of flows so it is valid.
        let keep = raw_edges.len() / layers as usize * layers as usize;
        let rec = FlowsRecord {
            graph_id,
            target: target_from(tbits),
            layers,
            max_flows,
            layer_edge_count,
            flow_edges: raw_edges[..keep].to_vec(),
            dropped,
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(FlowsRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn explanation_record_round_trips(
        job_id in 0u64..u64::MAX,
        kbits in (0u32..100, 0u64..u64::MAX, 0u64..1_000, 1u32..4),
        edge_scores in prop::collection::vec(-1.0f32..1.0, 0..20),
        mask_params in prop::collection::vec(-4.0f32..4.0, 0..10),
        flags in 0u8..8,
        times in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let (model_id, graph_id, tbits, layers) = kbits;
        let rec = ExplanationRecord {
            job_id,
            key: MaskKey {
                model_id,
                graph_id,
                target: target_from(tbits),
                layers,
            },
            model_fingerprint: graph_id ^ 0x5555,
            edge_scores: edge_scores.clone(),
            layer_edge_scores: if flags & 1 == 0 {
                None
            } else {
                Some(vec![edge_scores.clone(), edge_scores.clone()])
            },
            flow_scores: if flags & 2 == 0 { None } else { Some(edge_scores) },
            degradation: Degradation {
                deadline_hit: flags & 4 == 4,
                epochs_run: (job_id % 600) as usize,
                epochs_planned: 600,
                flows_dropped: tbits,
            },
            phases: PhaseSummary {
                queue_us: times.0,
                prep_us: times.1,
                explain_us: times.2,
            },
            mask: Some(StoredMask {
                selected: (0..mask_params.len() as u32).collect(),
                mask_params,
                layer_weights: vec![vec![0.54]],
            }),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(ExplanationRecord::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn every_proper_prefix_of_a_record_is_rejected(
        job_id in 0u64..1_000,
        cut in 0usize..10_000,
    ) {
        let rec = ExplanationRecord {
            job_id,
            key: MaskKey {
                model_id: 1,
                graph_id: 2,
                target: Target::Node(3),
                layers: 2,
            },
            model_fingerprint: 4,
            edge_scores: vec![0.5; 6],
            layer_edge_scores: Some(vec![vec![0.1; 4], vec![0.2; 4]]),
            flow_scores: Some(vec![0.9; 3]),
            degradation: Degradation::default(),
            phases: PhaseSummary::default(),
            mask: Some(StoredMask {
                mask_params: vec![0.1, 0.2],
                layer_weights: vec![vec![0.0]],
                selected: vec![0, 1],
            }),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let cut = cut % buf.len(); // strict prefix
        prop_assert!(ExplanationRecord::decode(&buf[..cut]).is_err());
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = ModelRecord::decode(&bytes);
        let _ = FlowsRecord::decode(&bytes);
        let _ = ExplanationRecord::decode(&bytes);
    }

    #[test]
    fn single_byte_corruption_never_grows_the_decoded_record(
        pos in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        // Codec-level corruption (the log's CRC normally screens this out):
        // a flipped byte may shift field boundaries, but decode must either
        // error or return a record — never panic or over-allocate.
        let rec = FlowsRecord {
            graph_id: 7,
            target: Target::Node(2),
            layers: 2,
            max_flows: 100,
            layer_edge_count: 5,
            flow_edges: vec![0, 1, 2, 3],
            dropped: 0,
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let pos = pos % buf.len();
        buf[pos] ^= xor;
        if let Ok(back) = FlowsRecord::decode(&buf) {
            // A successful decode can only come from flips in value fields;
            // the structure must still be internally consistent.
            prop_assert!((back.flow_edges.len() as u32).is_multiple_of(back.layers));
            prop_assert!(back
                .flow_edges
                .iter()
                .all(|&e| e < back.layer_edge_count));
        }
    }
}

#[test]
fn hostile_length_prefixes_fail_before_allocation() {
    // A mask whose selection claims 2^30 entries but carries none: the
    // decoder must refuse from the prefix alone (Truncated), not allocate.
    let rec = ExplanationRecord {
        job_id: 1,
        key: MaskKey {
            model_id: 0,
            graph_id: 0,
            target: Target::Graph,
            layers: 1,
        },
        model_fingerprint: 0,
        edge_scores: vec![],
        layer_edge_scores: None,
        flow_scores: None,
        degradation: Degradation::default(),
        phases: PhaseSummary::default(),
        mask: None,
    };
    let mut buf = Vec::new();
    rec.encode(&mut buf);
    // Rewrite the trailing "no mask" flag into "mask present" followed by a
    // hostile mask_params length.
    buf.pop();
    buf.push(1);
    put_u32(&mut buf, 1 << 30);
    assert!(ExplanationRecord::decode(&buf).is_err());
}
