//! Integration tests for the runtime's write-behind persistence: crash
//! recovery (models, flow cache, job ids) and store-seeded warm starts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use revelio_core::{Objective, Revelio, RevelioConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};
use revelio_store::{LogStore, Store};

/// A fresh store path per call: unique within the process run and across
/// concurrently running test binaries.
fn temp_store() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "revelio-runtime-persist-{}-{}.log",
        std::process::id(),
        n
    ))
}

fn trained_model() -> (Gnn, Graph) {
    let mut b = Graph::builder(5, 2);
    b.undirected_edge(0, 1)
        .undirected_edge(1, 2)
        .undirected_edge(2, 3)
        .undirected_edge(3, 4);
    for v in 0..5 {
        b.node_features(v, &[1.0, v as f32 * 0.3]);
    }
    b.node_labels((0..5).map(|v| v % 2).collect());
    let g = b.build();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &g,
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, g)
}

fn job(g: &Graph, epochs: usize) -> ExplainJob {
    ExplainJob::flow_based(
        g.clone(),
        Target::Node(2),
        1,
        100_000,
        Box::new(move |seed| {
            Box::new(Revelio::new(RevelioConfig {
                epochs,
                objective: Objective::Factual,
                seed,
                ..Default::default()
            }))
        }),
    )
    .with_deadline(Duration::from_secs(3600))
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        workers: 1,
        seed: 42,
        ..Default::default()
    }
}

#[test]
fn restart_recovers_models_cache_and_job_ids() {
    let path = temp_store();
    let (model, g) = trained_model();

    // First life: register, serve one job.
    let (cold_scores, cold_job_id) = {
        let store: Arc<dyn Store> = Arc::new(LogStore::open(&path).expect("open store"));
        let rt = Runtime::try_with_config_and_store(config(), store).expect("boot");
        let handle = rt.register_model(&model);
        let out = rt.submit(handle, job(&g, 20)).wait().expect("served");
        (out.explanation.edge_scores.clone(), out.job_id)
    };

    // Second life against the same file.
    let store = Arc::new(LogStore::open(&path).expect("reopen store"));
    let rt = Runtime::try_with_config_and_store(config(), Arc::clone(&store) as Arc<dyn Store>)
        .expect("recovery");

    // The model registry is restored: the pre-restart handle works
    // without re-registration.
    let handles = rt.model_handles();
    assert_eq!(handles.len(), 1, "recovered model registry");

    // The pre-restart explanation is still addressable by its job id.
    let rec = store
        .explanation(cold_job_id)
        .expect("read")
        .expect("stored explanation survived restart");
    assert_eq!(rec.edge_scores, cold_scores);

    // A new job reuses the recovered flow cache (hit, not a rebuild) and
    // gets a job id past everything persisted.
    let out = rt.submit(handles[0], job(&g, 20)).wait().expect("served");
    assert!(out.job_id > cold_job_id, "job ids must resume, not collide");
    let m = rt.metrics();
    assert!(
        m.cache_hits >= 1,
        "recovered flow table should pre-warm the cache: {m:?}"
    );

    // Same runtime seed + same job-id stream would give bit-identical
    // scores; the id resumed past the stored one, so scores may differ —
    // but the answer must still be structurally sound.
    assert_eq!(out.explanation.edge_scores.len(), cold_scores.len());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_start_jobs_hit_the_store_and_cut_epochs() {
    let path = temp_store();
    let (model, g) = trained_model();
    let store: Arc<dyn Store> = Arc::new(LogStore::open(&path).expect("open store"));
    let rt = Runtime::try_with_config_and_store(config(), store).expect("boot");
    let handle = rt.register_model(&model);

    // Cold job persists its converged mask.
    let cold = rt.submit(handle, job(&g, 500)).wait().expect("cold");
    assert_eq!(cold.degradation.epochs_run, 500);

    // Warm job: store hit, early stop, honest epoch accounting.
    let warm = rt
        .submit(handle, job(&g, 500).with_warm_start(true))
        .wait()
        .expect("warm");
    assert!(
        warm.degradation.epochs_run < 500,
        "warm start should stop early, ran {}",
        warm.degradation.epochs_run
    );
    assert!(!warm.degraded(), "early stop is not a degradation");

    let m = rt.metrics();
    assert_eq!(m.store_hits, 1, "one warm lookup hit: {m:?}");
    assert_eq!(m.store_misses, 0);

    // A warm job for a model the store has never seen under this key
    // counts a miss and falls back to the cold path.
    let other = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 8,
    });
    let other_handle = rt.register_model(&other);
    let miss = rt
        .submit(other_handle, job(&g, 20).with_warm_start(true))
        .wait()
        .expect("miss job");
    assert_eq!(miss.degradation.epochs_run, 20);
    assert_eq!(rt.metrics().store_misses, 1);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn runtime_without_store_counts_warm_lookups_as_misses() {
    let (model, g) = trained_model();
    let rt = Runtime::with_config(config());
    let handle = rt.register_model(&model);
    let out = rt
        .submit(handle, job(&g, 10).with_warm_start(true))
        .wait()
        .expect("served");
    assert_eq!(out.degradation.epochs_run, 10);
    let m = rt.metrics();
    assert_eq!(m.store_hits, 0);
    assert_eq!(m.store_misses, 1);
}
