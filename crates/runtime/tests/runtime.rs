//! Integration tests for the serving runtime: scheduling-independent
//! determinism, deadline-induced degradation, worker drain on drop, panic
//! isolation, and artifact-cache sharing across jobs.

use std::time::Duration;

use revelio_core::{Explainer, Objective, Revelio, RevelioConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::{ExplainJob, JobError, Runtime, RuntimeConfig};

/// A small trained model and a family of path graphs to explain.
fn trained_model() -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..4)
        .map(|variant| {
            let mut b = Graph::builder(5, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4);
            if variant % 2 == 1 {
                b.undirected_edge(0, 2);
            }
            for v in 0..5 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.3]);
            }
            b.node_labels((0..5).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn revelio_factory(epochs: usize) -> impl Fn(u64) -> Box<dyn revelio_core::Explainer> + Send {
    move |seed| {
        Box::new(Revelio::new(RevelioConfig {
            epochs,
            objective: Objective::Factual,
            seed,
            ..Default::default()
        }))
    }
}

fn jobs_for(graphs: &[Graph], epochs: usize) -> Vec<ExplainJob> {
    graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            ExplainJob::flow_based(
                g.clone(),
                Target::Node(2),
                i as u64,
                100_000,
                Box::new(revelio_factory(epochs)),
            )
        })
        .collect()
}

/// The acceptance property: the same job stream produces bit-identical
/// edge scores at any worker count, because seeds derive from submission
/// order rather than scheduling.
#[test]
fn scores_are_bit_identical_across_worker_counts() {
    let (model, graphs) = trained_model();
    let mut per_count: Vec<Vec<Vec<f32>>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let rt = Runtime::with_config(RuntimeConfig {
            workers,
            seed: 42,
            ..Default::default()
        });
        let handle = rt.register_model(&model);
        let results = rt.explain_batch(handle, jobs_for(&graphs, 12));
        let scores: Vec<Vec<f32>> = results
            .into_iter()
            .map(|r| r.expect("job served").explanation.edge_scores)
            .collect();
        per_count.push(scores);
    }
    assert_eq!(per_count[0], per_count[1], "1 vs 2 workers diverged");
    assert_eq!(per_count[0], per_count[2], "1 vs 4 workers diverged");
}

/// Rebuilt models answer exactly like the original: a runtime with one
/// worker matches a direct (no-runtime) explain call seeded the same way.
#[test]
fn runtime_matches_direct_explainer_call() {
    let (model, graphs) = trained_model();
    let rt = Runtime::with_config(RuntimeConfig {
        workers: 2,
        seed: 9,
        ..Default::default()
    });
    let handle = rt.register_model(&model);
    let ticket = rt.submit(
        handle,
        ExplainJob::flow_based(
            graphs[0].clone(),
            Target::Node(2),
            0,
            100_000,
            Box::new(revelio_factory(8)),
        ),
    );
    let output = ticket.wait().expect("served");
    // Reproduce the job inline: same derived seed, same instance.
    let seed = output_seed(9, output.job_id);
    let direct = Revelio::new(RevelioConfig {
        epochs: 8,
        objective: Objective::Factual,
        seed,
        ..Default::default()
    })
    .explain(
        &model,
        &revelio_gnn::Instance::for_prediction(&model, graphs[0].clone(), Target::Node(2)),
    );
    assert_eq!(output.explanation.edge_scores, direct.edge_scores);
}

/// Mirror of the runtime's seed derivation (kept in lockstep by this test:
/// if the mix ever changes, `runtime_matches_direct_explainer_call` fails).
fn output_seed(base: u64, job_id: u64) -> u64 {
    let mut z = base ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An already-expired deadline still yields a structurally valid mask,
/// flagged as degraded, rather than an error.
#[test]
fn expired_deadline_degrades_gracefully() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(2);
    let handle = rt.register_model(&model);
    let job = ExplainJob::flow_based(
        graphs[0].clone(),
        Target::Node(2),
        0,
        100_000,
        Box::new(revelio_factory(400)),
    )
    .with_deadline(Duration::ZERO);
    let output = rt.submit(handle, job).wait().expect("degraded, not failed");
    assert!(output.degraded(), "zero budget must degrade");
    assert!(output.degradation.deadline_hit);
    assert!(output.degradation.epochs_run < 400);
    assert!(!output.explanation.edge_scores.is_empty());
    assert!(
        output
            .explanation
            .edge_scores
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
        "degraded mask must still be a valid sigmoid mask"
    );
    let m = rt.metrics();
    assert_eq!(m.jobs_degraded, 1);
    assert_eq!(m.jobs_completed, 1);
}

/// Dropping the runtime drains the queue and joins every worker — no
/// leaked threads, and every submitted job still gets an answer.
#[test]
fn drop_drains_queue_and_joins_workers() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(3);
    let probe = rt.worker_probe();
    assert_eq!(rt.alive_workers(), 3);
    let handle = rt.register_model(&model);
    let tickets: Vec<_> = jobs_for(&graphs, 4)
        .into_iter()
        .map(|j| rt.submit(handle, j))
        .collect();
    drop(rt); // closes the queue; workers drain then exit
    assert_eq!(probe.alive_workers(), 0, "worker thread leaked past drop");
    for t in tickets {
        assert!(t.wait().is_ok(), "queued job dropped without an answer");
    }
}

/// `cancel_all` fails queued jobs instead of running them.
#[test]
fn cancel_all_abandons_queued_work() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(1);
    let handle = rt.register_model(&model);
    rt.cancel_all();
    let results = rt.explain_batch(handle, jobs_for(&graphs, 50));
    for r in results {
        assert_eq!(r.err(), Some(JobError::Cancelled));
    }
    assert_eq!(rt.metrics().jobs_failed, 4);
}

/// A panicking explainer fails its own job; the worker survives and keeps
/// serving later jobs.
#[test]
fn panicking_job_does_not_kill_worker() {
    struct Bomb;
    impl revelio_core::Explainer for Bomb {
        fn name(&self) -> &'static str {
            "Bomb"
        }
        fn explain(&self, _: &Gnn, _: &revelio_gnn::Instance) -> revelio_core::Explanation {
            panic!("boom");
        }
    }
    let (model, graphs) = trained_model();
    let rt = Runtime::new(1);
    let handle = rt.register_model(&model);
    let bomb = ExplainJob::edge_based(
        graphs[0].clone(),
        Target::Node(2),
        0,
        Box::new(|_seed| Box::new(Bomb) as Box<dyn revelio_core::Explainer>),
    );
    let err = match rt.submit(handle, bomb).wait() {
        Ok(_) => panic!("bomb job must fail"),
        Err(e) => e,
    };
    match err {
        JobError::Panicked(msg) => assert!(msg.contains("boom")),
        other => panic!("expected panic error, got {other:?}"),
    }
    // The same (sole) worker still serves real jobs.
    let ok = rt.submit(
        handle,
        ExplainJob::flow_based(
            graphs[1].clone(),
            Target::Node(2),
            1,
            100_000,
            Box::new(revelio_factory(3)),
        ),
    );
    assert!(ok.wait().is_ok());
    assert_eq!(rt.alive_workers(), 1);
    let m = rt.metrics();
    assert_eq!(m.jobs_failed, 1);
    assert_eq!(m.jobs_completed, 1);
}

/// Two jobs against the same `(graph_id, target, L)` share one cached flow
/// index: the second job is a cache hit.
#[test]
fn repeated_instance_hits_flow_cache() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(1);
    let handle = rt.register_model(&model);
    let job = |seed_offset: usize| {
        ExplainJob::flow_based(
            graphs[0].clone(),
            Target::Node(2),
            0,
            100_000,
            Box::new(revelio_factory(3 + seed_offset)),
        )
    };
    let first = rt.submit(handle, job(0)).wait().expect("served");
    let second = rt.submit(handle, job(1)).wait().expect("served");
    let (hits, misses) = (rt.metrics().cache_hits, rt.metrics().cache_misses);
    assert_eq!(misses, 1, "first job misses once (flow index build)");
    assert_eq!(hits, 1, "second job must hit the shared flow index");
    let (a, b) = (
        first.explanation.flows.expect("flows"),
        second.explanation.flows.expect("flows"),
    );
    assert!(
        std::sync::Arc::ptr_eq(&a.index, &b.index),
        "both jobs must reference the same cached index"
    );
}

/// Metrics snapshot totals line up with the jobs actually pushed through.
#[test]
fn metrics_account_for_every_job() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(2);
    let handle = rt.register_model(&model);
    let results = rt.explain_batch(handle, jobs_for(&graphs, 5));
    assert_eq!(results.len(), 4);
    let m = rt.metrics();
    assert_eq!(m.jobs_submitted, 4);
    assert_eq!(m.jobs_started, 4);
    assert_eq!(m.jobs_completed, 4);
    assert_eq!(m.jobs_failed, 0);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.explain_latency.count, 4);
    let report = m.report();
    assert!(report.contains("submitted=4"));
}

/// Zero-sized resources are typed construction errors, not silent clamps.
#[test]
fn invalid_configs_are_rejected_with_typed_errors() {
    use revelio_runtime::RuntimeConfigError;
    let cases = [
        (
            RuntimeConfig {
                workers: 0,
                ..Default::default()
            },
            RuntimeConfigError::ZeroWorkers,
        ),
        (
            RuntimeConfig {
                cache_capacity: 0,
                ..Default::default()
            },
            RuntimeConfigError::ZeroCacheCapacity,
        ),
        (
            RuntimeConfig {
                cache_shards: 0,
                ..Default::default()
            },
            RuntimeConfigError::ZeroCacheShards,
        ),
        (
            RuntimeConfig {
                max_batch: 0,
                ..Default::default()
            },
            RuntimeConfigError::ZeroMaxBatch,
        ),
    ];
    for (cfg, expected) in cases {
        match Runtime::try_with_config(cfg) {
            Err(e) => assert_eq!(e, expected),
            Ok(_) => panic!("invalid config accepted (expected {expected:?})"),
        }
    }
    // The error messages say what to fix, not just what broke.
    assert!(RuntimeConfigError::ZeroWorkers
        .to_string()
        .contains("worker"));
}

/// `with_config` keeps its panicking contract for invalid configs.
#[test]
#[should_panic(expected = "invalid RuntimeConfig")]
fn with_config_panics_on_invalid() {
    let _ = Runtime::with_config(RuntimeConfig {
        workers: 0,
        ..Default::default()
    });
}

/// `try_submit` sheds at the admission watermark, hands the job back
/// unchanged, and counts the rejection without counting a submission.
#[test]
fn try_submit_sheds_at_the_watermark() {
    let (model, graphs) = trained_model();
    let rt = Runtime::new(1);
    let handle = rt.register_model(&model);

    // Watermark 0: everything is shed, nothing queues.
    let job = jobs_for(&graphs, 3).remove(0);
    let returned = match rt.try_submit(handle, job, 0) {
        Err(j) => j,
        Ok(_) => panic!("watermark 0 admitted a job"),
    };
    assert_eq!(returned.graph.num_edges(), graphs[0].num_edges());
    let m = rt.metrics();
    assert_eq!(m.jobs_rejected, 1);
    assert_eq!(m.jobs_submitted, 0);

    // A sane watermark admits the returned job; the gauge drains to zero
    // once it completes.
    let ticket = match rt.try_submit(handle, returned, 8) {
        Ok(t) => t,
        Err(_) => panic!("watermark 8 shed an only job"),
    };
    ticket.wait().expect("served");
    // The gauge releases just after result delivery; give it a beat.
    for _ in 0..200 {
        if rt.in_flight() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(rt.in_flight(), 0, "gauge did not drain after completion");
    let m = rt.metrics();
    assert_eq!(m.jobs_rejected, 1);
    assert_eq!(m.jobs_submitted, 1);
    assert_eq!(m.jobs_completed, 1);
    let report = m.report();
    assert!(report.contains("rejected=1"));
}

/// Batched serving (`max_batch > 1`) answers every job with scores that
/// match the unbatched runtime within the documented tolerance, and the
/// batch metrics record the fused passes.
#[test]
fn batched_serving_matches_serial_within_tolerance() {
    let (model, graphs) = trained_model();
    let spec = RevelioConfig {
        epochs: 12,
        objective: Objective::Factual,
        ..Default::default()
    };
    let run = |max_batch: usize| {
        let rt = Runtime::with_config(RuntimeConfig {
            workers: 1,
            seed: 42,
            max_batch,
            // Generous linger so the whole submitted burst lands in one
            // fused pass regardless of scheduling.
            batch_linger: Duration::from_millis(50),
            ..Default::default()
        });
        let handle = rt.register_model(&model);
        let jobs: Vec<ExplainJob> = jobs_for(&graphs, 12)
            .into_iter()
            .map(|j| j.with_batch_spec(spec))
            .collect();
        let scores: Vec<Vec<f32>> = rt
            .explain_batch(handle, jobs)
            .into_iter()
            .map(|r| r.expect("job served").explanation.edge_scores)
            .collect();
        (scores, rt.metrics())
    };
    let (serial, m1) = run(1);
    let (batched, m4) = run(4);
    assert_eq!(m1.batches, 0, "max_batch = 1 must never fuse");
    assert!(m4.batches >= 1, "no fused pass ran");
    assert!(m4.batched_jobs >= 2, "fused pass covered < 2 jobs");
    assert_eq!(m4.jobs_completed, 4);
    assert_eq!(m4.batch_size.count, m4.batches);
    for (j, (b, s)) in batched.iter().zip(&serial).enumerate() {
        assert_eq!(b.len(), s.len());
        for (i, (x, y)) in b.iter().zip(s).enumerate() {
            assert!(
                (x - y).abs() <= revelio_core::BATCH_TOLERANCE,
                "job {j} edge {i}: batched {x} vs serial {y}"
            );
        }
    }
}

/// A batchable job with no compatible peer runs on the ordinary serial
/// path (bit-identical to a runtime without batching), and mixed streams —
/// batchable and non-batchable jobs interleaved — all complete.
#[test]
fn lone_and_mixed_jobs_survive_batching_mode() {
    let (model, graphs) = trained_model();
    let spec = RevelioConfig {
        epochs: 8,
        objective: Objective::Factual,
        ..Default::default()
    };
    let rt = Runtime::with_config(RuntimeConfig {
        workers: 1,
        seed: 9,
        max_batch: 4,
        batch_linger: Duration::from_millis(1),
        ..Default::default()
    });
    let handle = rt.register_model(&model);
    // Lone batchable job: no peer arrives, so it must serve serially.
    let lone = rt
        .submit(
            handle,
            ExplainJob::flow_based(
                graphs[0].clone(),
                Target::Node(2),
                0,
                100_000,
                Box::new(revelio_factory(8)),
            )
            .with_batch_spec(spec),
        )
        .wait()
        .expect("lone job served");
    let plain = Runtime::with_config(RuntimeConfig {
        workers: 1,
        seed: 9,
        ..Default::default()
    });
    let handle2 = plain.register_model(&model);
    let reference = plain
        .submit(
            handle2,
            ExplainJob::flow_based(
                graphs[0].clone(),
                Target::Node(2),
                0,
                100_000,
                Box::new(revelio_factory(8)),
            ),
        )
        .wait()
        .expect("reference job served");
    assert_eq!(
        lone.explanation.edge_scores, reference.explanation.edge_scores,
        "a lone batchable job must stay bit-identical to the serial path"
    );
    // Mixed stream: batchable + deadline-carrying (ineligible) jobs.
    let mixed: Vec<ExplainJob> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let job = ExplainJob::flow_based(
                g.clone(),
                Target::Node(2),
                i as u64,
                100_000,
                Box::new(revelio_factory(6)),
            );
            if i % 2 == 0 {
                job.with_batch_spec(RevelioConfig {
                    epochs: 6,
                    ..Default::default()
                })
            } else {
                job.with_deadline(Duration::from_secs(60))
            }
        })
        .collect();
    for r in rt.explain_batch(handle, mixed) {
        assert!(r.is_ok(), "mixed-stream job failed: {:?}", r.err());
    }
}
