//! Property tests for the sharded LRU: eviction order, capacity, and shard
//! stability under arbitrary interleavings of gets and inserts.

use proptest::prelude::*;

use revelio_runtime::ShardedLru;

/// A reference (model) LRU: a plain vector in LRU→MRU order.
struct ModelLru {
    capacity: usize,
    entries: Vec<(u32, u32)>,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.push(entry);
        Some(value)
    }

    fn insert(&mut self, key: u32, value: u32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, value));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-shard cache behaves exactly like the reference LRU under
    /// any operation sequence: same hits, same values, same eviction
    /// victims, same final recency order.
    #[test]
    fn single_shard_matches_reference_lru(
        capacity in 1usize..6,
        ops in prop::collection::vec((0u32..10, 0u32..2), 1..60),
    ) {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(1, capacity);
        let mut model = ModelLru::new(capacity);
        for (i, &(key, op)) in ops.iter().enumerate() {
            if op == 1 {
                let value = i as u32;
                cache.insert(key, value);
                model.insert(key, value);
            } else {
                prop_assert_eq!(cache.get(&key), model.get(key), "get({}) diverged", key);
            }
            prop_assert_eq!(cache.len(), model.entries.len());
        }
        let order = cache.lru_order_by_shard();
        prop_assert_eq!(order.len(), 1);
        let expected: Vec<u32> = model.entries.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(&order[0], &expected, "LRU→MRU order diverged");
    }

    /// Sharding invariants: a key's shard never changes, every resident
    /// entry is in the shard `shard_of` names, no shard exceeds its
    /// capacity share, and values read back exactly what was written.
    #[test]
    fn sharded_cache_routes_keys_stably(
        shards in 1usize..5,
        capacity in 1usize..12,
        keys in prop::collection::vec(0u32..40, 1..80),
    ) {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(shards, capacity);
        prop_assert_eq!(cache.num_shards(), shards.max(1));
        let per_shard_cap = capacity.div_ceil(shards).max(1);
        for &key in &keys {
            let before = cache.shard_of(&key);
            cache.insert(key, key.wrapping_mul(3));
            prop_assert_eq!(cache.shard_of(&key), before, "shard moved on insert");
            prop_assert_eq!(cache.get(&key), Some(key.wrapping_mul(3)));
            let order = cache.lru_order_by_shard();
            for (shard_id, shard_keys) in order.iter().enumerate() {
                prop_assert!(shard_keys.len() <= per_shard_cap, "shard over capacity");
                for k in shard_keys {
                    prop_assert_eq!(cache.shard_of(k), shard_id, "entry in wrong shard");
                }
            }
        }
        prop_assert!(cache.len() <= per_shard_cap * shards.max(1));
    }

    /// Total eviction pressure: after inserting many distinct keys, the
    /// most recently touched keys of each shard survive.
    #[test]
    fn eviction_keeps_most_recent_per_shard(
        shards in 1usize..4,
        keys in prop::collection::vec(0u32..60, 10..60),
    ) {
        let capacity = 4usize;
        let cache: ShardedLru<u32, u32> = ShardedLru::new(shards, capacity);
        for &key in &keys {
            cache.insert(key, key);
        }
        // Replay the insert sequence against per-shard reference LRUs.
        let per_shard_cap = capacity.div_ceil(shards).max(1);
        let mut models: Vec<ModelLru> =
            (0..shards).map(|_| ModelLru::new(per_shard_cap)).collect();
        for &key in &keys {
            models[cache.shard_of(&key)].insert(key, key);
        }
        for (shard_id, model) in models.iter().enumerate() {
            let expected: Vec<u32> = model.entries.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(
                &cache.lru_order_by_shard()[shard_id],
                &expected,
                "shard {} diverged from reference",
                shard_id
            );
        }
    }
}
