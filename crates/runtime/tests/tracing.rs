//! Tracing through the runtime: a traced job carries a per-phase trace
//! that agrees with the metrics registry, untraced jobs pay nothing, and
//! finished traces stay retrievable from the runtime's retention window.

use revelio_core::{Objective, Revelio, RevelioConfig};
use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task, TrainConfig};
use revelio_graph::{Graph, Target};
use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};
use revelio_trace::Phase;

/// A small trained model and a couple of path graphs to explain.
fn trained_model() -> (Gnn, Vec<Graph>) {
    let graphs: Vec<Graph> = (0..2)
        .map(|variant| {
            let mut b = Graph::builder(5, 2);
            b.undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .undirected_edge(3, 4);
            for v in 0..5 {
                b.node_features(v, &[1.0, (v + variant) as f32 * 0.3]);
            }
            b.node_labels((0..5).map(|v| (v + variant) % 2).collect());
            b.build()
        })
        .collect();
    let model = Gnn::new(GnnConfig {
        kind: GnnKind::Gcn,
        task: Task::NodeClassification,
        in_dim: 2,
        hidden_dim: 8,
        num_classes: 2,
        num_layers: 2,
        heads: 1,
        seed: 7,
    });
    revelio_gnn::train_node_classifier(
        &model,
        &graphs[0],
        &[0, 1, 2, 3, 4],
        &TrainConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    (model, graphs)
}

fn job_for(graph: &Graph, graph_id: u64, epochs: usize) -> ExplainJob {
    ExplainJob::flow_based(
        graph.clone(),
        Target::Node(2),
        graph_id,
        100_000,
        Box::new(move |seed| {
            Box::new(Revelio::new(RevelioConfig {
                epochs,
                objective: Objective::Factual,
                seed,
                ..Default::default()
            }))
        }),
    )
}

/// A traced job returns a trace with a completed span for every phase,
/// whose epoch events agree with both the degradation report and the
/// metrics registry's epoch counter delta.
#[test]
fn traced_job_carries_consistent_per_phase_trace() {
    let (model, graphs) = trained_model();
    let rt = Runtime::with_config(RuntimeConfig {
        workers: 1,
        seed: 9,
        ..Default::default()
    });
    let handle = rt.register_model(&model);

    let before = rt.metrics();
    let out = rt
        .submit(handle, job_for(&graphs[0], 0, 12).with_trace())
        .wait()
        .expect("traced job served");
    let after = rt.metrics();
    let trace = out.trace.as_ref().expect("traced job carries its trace");

    for phase in [
        Phase::Extraction,
        Phase::FlowIndex,
        Phase::Optimize,
        Phase::Readout,
    ] {
        assert!(
            trace.phase_ns(phase) > 0,
            "phase {} has no completed span",
            phase.name()
        );
    }
    assert_eq!(trace.dropped, 0, "ring overflowed on a small job");
    assert_eq!(
        trace.epoch_count(),
        out.degradation.epochs_run,
        "epoch events disagree with the degradation report"
    );
    assert_eq!(
        trace.epoch_count() as u64,
        after.epochs_total - before.epochs_total,
        "epoch events disagree with the metrics counter delta"
    );
    assert!(
        trace.losses().iter().all(|l| l.is_finite()),
        "non-finite loss recorded"
    );

    // The finished trace is retained for later retrieval by id.
    let stored = rt.trace(trace.id.0).expect("trace retained after the job");
    assert_eq!(stored.events.len(), trace.events.len());
    assert_eq!(stored.id, trace.id);
}

/// Untraced jobs return no trace and leave nothing behind to retrieve,
/// while the always-on metrics bridge still sees their phase latencies.
#[test]
fn untraced_jobs_leave_no_trace_but_still_feed_metrics() {
    let (model, graphs) = trained_model();
    let rt = Runtime::with_config(RuntimeConfig {
        workers: 1,
        seed: 11,
        ..Default::default()
    });
    let handle = rt.register_model(&model);
    let out = rt
        .submit(handle, job_for(&graphs[1], 1, 8))
        .wait()
        .expect("untraced job served");
    assert!(out.trace.is_none(), "untraced job grew a trace");

    let m = rt.metrics();
    assert_eq!(m.epochs_total, out.degradation.epochs_run as u64);
    for (name, h) in [
        ("extraction", &m.phase_extraction),
        ("flow_index", &m.phase_flow_index),
        ("optimize", &m.phase_optimize),
        ("readout", &m.phase_readout),
    ] {
        assert_eq!(h.count, 1, "phase histogram {name} missed the untraced job");
    }
}
