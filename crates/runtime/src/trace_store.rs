//! Bounded retention of finished request traces.
//!
//! Traced jobs drain their ring-buffer journal into a [`Trace`] when they
//! finish; the runtime keeps the most recent few so a client (or
//! `revelio-top`) can fetch one by id *after* the response went out. The
//! store is a fixed-capacity FIFO — drop-oldest, like the journal itself —
//! so a long-running server's memory is bounded no matter how many traced
//! requests it serves.

use std::collections::VecDeque;

use revelio_check::sync::{Mutex, MutexGuard};
use revelio_trace::{Trace, TraceId};

/// A fixed-capacity, drop-oldest store of finished traces.
pub(crate) struct TraceStore {
    traces: Mutex<VecDeque<Trace>>,
    capacity: usize,
}

impl TraceStore {
    /// A store retaining at most `capacity` traces (rounded up to 1).
    pub(crate) fn new(capacity: usize) -> TraceStore {
        TraceStore {
            traces: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Retains `trace`, evicting the oldest retained trace when full. A
    /// re-used id replaces the previous trace under that id.
    pub(crate) fn push(&self, trace: Trace) {
        let mut traces = lock(&self.traces);
        traces.retain(|t| t.id != trace.id);
        while traces.len() >= self.capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }

    /// The retained trace with the given id, if it has not been evicted.
    pub(crate) fn get(&self, id: TraceId) -> Option<Trace> {
        lock(&self.traces).iter().find(|t| t.id == id).cloned()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> Trace {
        Trace {
            id: TraceId(id),
            events: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn bounded_drop_oldest_retention() {
        let store = TraceStore::new(2);
        store.push(trace(1));
        store.push(trace(2));
        store.push(trace(3));
        assert!(store.get(TraceId(1)).is_none());
        assert!(store.get(TraceId(2)).is_some());
        assert!(store.get(TraceId(3)).is_some());
        assert!(store.get(TraceId(9)).is_none());
    }

    #[test]
    fn reused_id_replaces_previous_trace() {
        let store = TraceStore::new(4);
        store.push(trace(1));
        store.push(Trace {
            dropped: 5,
            ..trace(1)
        });
        let got = store.get(TraceId(1)).expect("retained");
        assert_eq!(got.dropped, 5);
    }
}
