//! Bounded retention of finished request traces.
//!
//! Traced jobs drain their ring-buffer journal into a [`Trace`] when they
//! finish; the runtime keeps the most recent few so a client (or
//! `revelio-top`) can fetch one by id *after* the response went out. The
//! store is a fixed-capacity FIFO — drop-oldest, like the journal itself —
//! so a long-running server's memory is bounded no matter how many traced
//! requests it serves.

use std::collections::VecDeque;

use revelio_check::sync::{Mutex, MutexGuard};
use revelio_trace::{Trace, TraceId};

/// Why [`TraceStore::fetch`] found no trace: distinguishes "this id was
/// retained once but fell out of the bounded window" from "this id was
/// never here", so callers can surface a precise error instead of an
/// empty result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMiss {
    /// The trace existed but was evicted by newer traces (or replaced by a
    /// re-used id).
    Evicted,
    /// No trace was ever retained under this id (unknown, still running,
    /// or untraced).
    Unknown,
}

impl std::fmt::Display for TraceMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceMiss::Evicted => write!(f, "trace evicted from the retention window"),
            TraceMiss::Unknown => write!(f, "unknown trace id"),
        }
    }
}

/// How many evicted ids the store remembers for [`TraceMiss::Evicted`]
/// classification; a multiple of the retention window so the answer stays
/// useful well past eviction without unbounded growth.
const EVICTED_ID_MEMORY: usize = 8;

/// A fixed-capacity, drop-oldest store of finished traces.
pub(crate) struct TraceStore {
    traces: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    traces: VecDeque<Trace>,
    /// Ids that were retained and then evicted, bounded at
    /// `EVICTED_ID_MEMORY ×` the trace capacity (drop-oldest, like the
    /// traces themselves).
    evicted: VecDeque<TraceId>,
}

impl TraceStore {
    /// A store retaining at most `capacity` traces (rounded up to 1).
    pub(crate) fn new(capacity: usize) -> TraceStore {
        TraceStore {
            traces: Mutex::new(Inner {
                traces: VecDeque::new(),
                evicted: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Retains `trace`, evicting the oldest retained trace when full. A
    /// re-used id replaces the previous trace under that id.
    pub(crate) fn push(&self, trace: Trace) {
        let mut inner = lock(&self.traces);
        inner.traces.retain(|t| t.id != trace.id);
        while inner.traces.len() >= self.capacity {
            if let Some(old) = inner.traces.pop_front() {
                remember_evicted(&mut inner, self.capacity, old.id);
            }
        }
        // The id is back: a stale eviction record would misclassify a
        // future miss after it gets evicted again, so drop it now.
        inner.evicted.retain(|id| *id != trace.id);
        inner.traces.push_back(trace);
    }

    /// The retained trace with the given id, if it has not been evicted.
    pub(crate) fn get(&self, id: TraceId) -> Option<Trace> {
        lock(&self.traces)
            .traces
            .iter()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Like [`TraceStore::get`], but a miss says *why*: evicted from the
    /// bounded window, or never retained at all.
    pub(crate) fn fetch(&self, id: TraceId) -> Result<Trace, TraceMiss> {
        let inner = lock(&self.traces);
        if let Some(t) = inner.traces.iter().find(|t| t.id == id) {
            return Ok(t.clone());
        }
        if inner.evicted.contains(&id) {
            Err(TraceMiss::Evicted)
        } else {
            Err(TraceMiss::Unknown)
        }
    }

    /// The most recently retained trace, if any.
    pub(crate) fn newest(&self) -> Option<Trace> {
        lock(&self.traces).traces.back().cloned()
    }
}

fn remember_evicted(inner: &mut Inner, capacity: usize, id: TraceId) {
    while inner.evicted.len() >= capacity.saturating_mul(EVICTED_ID_MEMORY) {
        inner.evicted.pop_front();
    }
    inner.evicted.push_back(id);
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> Trace {
        Trace {
            id: TraceId(id),
            events: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn bounded_drop_oldest_retention() {
        let store = TraceStore::new(2);
        store.push(trace(1));
        store.push(trace(2));
        store.push(trace(3));
        assert!(store.get(TraceId(1)).is_none());
        assert!(store.get(TraceId(2)).is_some());
        assert!(store.get(TraceId(3)).is_some());
        assert!(store.get(TraceId(9)).is_none());
    }

    #[test]
    fn reused_id_replaces_previous_trace() {
        let store = TraceStore::new(4);
        store.push(trace(1));
        store.push(Trace {
            dropped: 5,
            ..trace(1)
        });
        let got = store.get(TraceId(1)).expect("retained");
        assert_eq!(got.dropped, 5);
    }

    #[test]
    fn retention_stays_bounded_under_churn() {
        let store = TraceStore::new(3);
        for id in 0..1_000 {
            store.push(trace(id));
        }
        let retained: Vec<u64> = (0..1_000)
            .filter(|id| store.get(TraceId(*id)).is_some())
            .collect();
        assert_eq!(retained, vec![997, 998, 999]);
    }

    #[test]
    fn eviction_is_oldest_first() {
        let store = TraceStore::new(3);
        for id in 1..=3 {
            store.push(trace(id));
        }
        // Re-pushing 1 moves it to the back; the next overflow must now
        // evict 2 (the oldest retained), not 1.
        store.push(trace(1));
        store.push(trace(4));
        assert_eq!(store.fetch(TraceId(2)), Err(TraceMiss::Evicted));
        assert!(store.get(TraceId(1)).is_some());
        assert!(store.get(TraceId(3)).is_some());
        assert!(store.get(TraceId(4)).is_some());
    }

    #[test]
    fn fetch_distinguishes_evicted_from_unknown() {
        let store = TraceStore::new(2);
        store.push(trace(1));
        store.push(trace(2));
        store.push(trace(3));
        assert_eq!(store.fetch(TraceId(1)), Err(TraceMiss::Evicted));
        assert_eq!(store.fetch(TraceId(9)), Err(TraceMiss::Unknown));
        assert_eq!(store.fetch(TraceId(3)).map(|t| t.id), Ok(TraceId(3)));
        // A returning id clears its eviction record…
        store.push(trace(1));
        assert!(store.fetch(TraceId(1)).is_ok());
        // …and the eviction memory itself is bounded.
        for id in 100..2_000 {
            store.push(trace(id));
        }
        assert_eq!(store.fetch(TraceId(100)), Err(TraceMiss::Unknown));
        assert_eq!(store.fetch(TraceId(1_990)), Err(TraceMiss::Evicted));
    }

    #[test]
    fn newest_tracks_the_last_push() {
        let store = TraceStore::new(2);
        assert!(store.newest().is_none());
        store.push(trace(7));
        store.push(trace(8));
        assert_eq!(store.newest().map(|t| t.id), Some(TraceId(8)));
    }
}
