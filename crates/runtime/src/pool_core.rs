//! The generic fixed-size worker pool under [`Runtime`].
//!
//! `PoolCore` owns exactly the concurrency skeleton — one unbounded mpsc
//! queue feeding `workers` named threads, drain-on-drop shutdown — and
//! nothing about explanation serving. The split exists for the model
//! checker: `PoolCore` speaks only [`revelio_check::sync`] vocabulary, so
//! `revelio-check`'s `--features check` build can exhaustively explore
//! submit/drain/shutdown interleavings of the *real* pool (see
//! `crates/check/tests/real_structures.rs`), while the default build
//! compiles to the exact `std` code the runtime always had.
//!
//! [`Runtime`]: crate::Runtime

use revelio_check::sync::{mpsc, thread, Arc, Mutex, MutexGuard};

/// A fixed set of worker threads fed from one shared mpsc queue.
///
/// Each worker builds its own state with `init(worker_index)` *on the
/// worker thread* (the runtime's state holds `Rc`-based tensors, which
/// must never cross threads), then loops `recv → handler(&mut state, job)`
/// until the queue is closed **and drained**. Dropping the pool closes the
/// queue and joins every worker, so `Drop` is the graceful-drain shutdown.
pub struct PoolCore<J: Send + 'static> {
    tx: Option<mpsc::Sender<J>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<J: Send + 'static> PoolCore<J> {
    /// Spawns `workers` threads named `{name_prefix}-{i}`.
    ///
    /// `init` runs once per worker, on that worker's thread; `handler`
    /// runs once per job. A handler that panics kills its worker (the
    /// caller is expected to `catch_unwind` per job if workers must
    /// survive — [`Runtime`] does).
    ///
    /// # Errors
    ///
    /// Propagates the OS thread-spawn failure; threads spawned before the
    /// failure are shut down (the queue is dropped, so they exit).
    ///
    /// [`Runtime`]: crate::Runtime
    pub fn spawn<S, I, H>(
        name_prefix: &str,
        workers: usize,
        init: I,
        handler: H,
    ) -> std::io::Result<PoolCore<J>>
    where
        S: 'static,
        I: Fn(usize) -> S + Send + Sync + 'static,
        H: Fn(&mut S, J) + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel::<J>();
        let rx = Arc::new(Mutex::new(rx));
        let init = Arc::new(init);
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let init = Arc::clone(&init);
            let handler = Arc::clone(&handler);
            let handle = thread::Builder::new()
                .name(format!("{name_prefix}-{i}"))
                .spawn(move || {
                    let mut state = init(i);
                    loop {
                        // Hold the receiver lock only for the dequeue itself.
                        let job = { lock(&rx).recv() };
                        let Ok(job) = job else {
                            break; // queue closed and drained: shutdown
                        };
                        handler(&mut state, job);
                    }
                })?;
            handles.push(handle);
        }
        Ok(PoolCore {
            tx: Some(tx),
            workers: handles,
        })
    }

    /// Enqueues one job, or hands it back when every worker has exited
    /// (which cannot normally happen while the pool is alive — workers
    /// only exit when the queue closes or a handler panics).
    ///
    /// # Errors
    ///
    /// Returns the job unchanged when no worker can ever receive it.
    pub fn submit(&self, job: J) -> Result<(), J> {
        match &self.tx {
            Some(tx) => tx.send(job).map_err(|mpsc::SendError(j)| j),
            None => Err(job),
        }
    }

    /// The number of worker threads the pool was spawned with.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<J: Send + 'static> Drop for PoolCore<J> {
    fn drop(&mut self) {
        // Closing the channel is the shutdown signal: workers drain the
        // remaining queue, then `recv` errors and they exit.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> std::fmt::Debug for PoolCore<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCore")
            .field("workers", &self.workers.len())
            .field("open", &self.tx.is_some())
            .finish()
    }
}

/// Locks a mutex, riding through poisoning (workers catch job panics, so
/// a poisoned receiver lock only means a handler died between jobs).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_check::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_are_handled_and_drop_drains_the_queue() {
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            PoolCore::spawn(
                "pool-core-test",
                2,
                |_i| (),
                move |(), job: u64| {
                    sum.fetch_add(job, Ordering::Relaxed);
                },
            )
            .expect("spawn")
        };
        assert_eq!(pool.workers(), 2);
        for job in 1..=100u64 {
            pool.submit(job).expect("submit");
        }
        drop(pool); // graceful drain: every submitted job is handled
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn per_worker_init_runs_on_each_worker() {
        let inits = Arc::new(AtomicU64::new(0));
        let pool: PoolCore<u64> = {
            let inits = Arc::clone(&inits);
            PoolCore::spawn(
                "pool-core-init",
                3,
                move |_i| {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), _job| {},
            )
            .expect("spawn")
        };
        drop(pool);
        assert_eq!(inits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn submit_after_worker_exit_returns_the_job() {
        let mut pool: PoolCore<u64> =
            PoolCore::spawn("pool-core-closed", 1, |_i| (), |(), _job| {}).expect("spawn");
        // Simulate the closed state Drop creates, without dropping.
        drop(pool.tx.take());
        for handle in pool.workers.drain(..) {
            let _ = handle.join();
        }
        assert_eq!(pool.submit(7), Err(7));
        assert_eq!(pool.workers(), 0);
    }
}
