//! The generic fixed-size worker pool under [`Runtime`].
//!
//! `PoolCore` owns exactly the concurrency skeleton — one unbounded shared
//! queue feeding `workers` named threads, drain-on-drop shutdown — and
//! nothing about explanation serving. The split exists for the model
//! checker: `PoolCore` speaks only [`revelio_check::sync`] vocabulary, so
//! `revelio-check`'s `--features check` build can exhaustively explore
//! submit/drain/shutdown interleavings of the *real* pool (see
//! `crates/check/tests/real_structures.rs`), while the default build
//! compiles to plain `std` primitives.
//!
//! The queue is a hand-rolled `Mutex<VecDeque>` + `Condvar` rather than a
//! mutex-wrapped `mpsc::Receiver` for one load-bearing reason: an idle
//! worker blocked in `Receiver::recv` holds the receiver mutex for the
//! whole wait, so any *other* worker's non-blocking `try_recv` (the
//! [`PoolCore::spawn_draining`] drain hook) deadlocks until the next
//! submit. A condvar wait releases the lock while parked, so draining
//! workers and idle workers never block each other.
//!
//! [`Runtime`]: crate::Runtime

use std::collections::VecDeque;

use revelio_check::sync::{thread, Arc, Condvar, Mutex, MutexGuard};

/// The shared closeable job queue: `Mutex<VecDeque>` + `Condvar`.
struct Channel<J> {
    state: Mutex<ChannelState<J>>,
    available: Condvar,
}

struct ChannelState<J> {
    queue: VecDeque<J>,
    closed: bool,
}

impl<J> Channel<J> {
    fn new() -> Channel<J> {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues unless closed; hands the job back if it is.
    fn push(&self, job: J) -> Result<(), J> {
        let mut s = lock(&self.state);
        if s.closed {
            return Err(job);
        }
        s.queue.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` only once the queue is closed **and** drained.
    /// The condvar wait releases the lock while parked, so concurrent
    /// [`Channel::try_pop`] calls are never blocked by an idle waiter.
    fn pop(&self) -> Option<J> {
        let mut s = lock(&self.state);
        loop {
            if let Some(job) = s.queue.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = wait(&self.available, s);
        }
    }

    /// Non-blocking pop: `None` when momentarily empty (or closed-and-
    /// drained — callers treat both the same).
    fn try_pop(&self) -> Option<J> {
        lock(&self.state).queue.pop_front()
    }

    /// Closes the queue: pushes fail, poppers drain the backlog then stop.
    fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }
}

/// A fixed set of worker threads fed from one shared queue.
///
/// Each worker builds its own state with `init(worker_index)` *on the
/// worker thread* (the runtime's state holds `Rc`-based tensors, which
/// must never cross threads), then loops `pop → handler(&mut state, job)`
/// until the queue is closed **and drained**. Dropping the pool closes the
/// queue and joins every worker, so `Drop` is the graceful-drain shutdown.
pub struct PoolCore<J: Send + 'static> {
    channel: Arc<Channel<J>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<J: Send + 'static> PoolCore<J> {
    /// Spawns `workers` threads named `{name_prefix}-{i}`.
    ///
    /// `init` runs once per worker, on that worker's thread; `handler`
    /// runs once per job. A handler that panics kills its worker (the
    /// caller is expected to `catch_unwind` per job if workers must
    /// survive — [`Runtime`] does).
    ///
    /// # Errors
    ///
    /// Propagates the OS thread-spawn failure; threads spawned before the
    /// failure are shut down (the queue is closed, so they exit).
    ///
    /// [`Runtime`]: crate::Runtime
    pub fn spawn<S, I, H>(
        name_prefix: &str,
        workers: usize,
        init: I,
        handler: H,
    ) -> std::io::Result<PoolCore<J>>
    where
        S: 'static,
        I: Fn(usize) -> S + Send + Sync + 'static,
        H: Fn(&mut S, J) + Send + Sync + 'static,
    {
        PoolCore::spawn_draining(name_prefix, workers, init, move |state, job, _drain| {
            handler(state, job)
        })
    }

    /// Like [`PoolCore::spawn`], but the handler also receives a `drain`
    /// closure that non-blockingly pulls further queued jobs (`None` when
    /// the queue is momentarily empty or closed). This lets a handler
    /// opportunistically coalesce several jobs into one unit of work
    /// (e.g. a fused optimisation batch) without a second queue.
    ///
    /// Draining never blocks on idle workers: they park on the queue's
    /// condvar, not inside a lock (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates the OS thread-spawn failure; threads spawned before the
    /// failure are shut down (the queue is closed, so they exit).
    pub fn spawn_draining<S, I, H>(
        name_prefix: &str,
        workers: usize,
        init: I,
        handler: H,
    ) -> std::io::Result<PoolCore<J>>
    where
        S: 'static,
        I: Fn(usize) -> S + Send + Sync + 'static,
        H: Fn(&mut S, J, &mut dyn FnMut() -> Option<J>) + Send + Sync + 'static,
    {
        let channel = Arc::new(Channel::new());
        let init = Arc::new(init);
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_channel = Arc::clone(&channel);
            let init = Arc::clone(&init);
            let handler = Arc::clone(&handler);
            let spawned = thread::Builder::new()
                .name(format!("{name_prefix}-{i}"))
                .spawn(move || {
                    let mut state = init(i);
                    while let Some(job) = worker_channel.pop() {
                        let mut drain = || worker_channel.try_pop();
                        handler(&mut state, job, &mut drain);
                    }
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    channel.close();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(PoolCore {
            channel,
            workers: handles,
        })
    }

    /// Enqueues one job, or hands it back when every worker has exited
    /// (which cannot normally happen while the pool is alive — workers
    /// only exit when the queue closes or a handler panics).
    ///
    /// # Errors
    ///
    /// Returns the job unchanged when no worker can ever receive it.
    pub fn submit(&self, job: J) -> Result<(), J> {
        // Workers hold the only other `Arc`s to the channel: a count of 1
        // means every worker exited (all panicked, or shutdown began), so
        // nothing could ever serve the job — mirror a closed-channel send.
        if Arc::strong_count(&self.channel) <= 1 {
            return Err(job);
        }
        self.channel.push(job)
    }

    /// The number of worker threads the pool was spawned with.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<J: Send + 'static> Drop for PoolCore<J> {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal: workers drain the
        // remaining backlog, then `pop` returns `None` and they exit.
        self.channel.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> std::fmt::Debug for PoolCore<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolCore")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Locks a mutex, riding through poisoning (workers catch job panics, so
/// a poisoned queue lock only means a handler died between jobs).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Waits on a condvar, riding through poisoning like [`lock`].
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_check::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_are_handled_and_drop_drains_the_queue() {
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            PoolCore::spawn(
                "pool-core-test",
                2,
                |_i| (),
                move |(), job: u64| {
                    sum.fetch_add(job, Ordering::Relaxed);
                },
            )
            .expect("spawn")
        };
        assert_eq!(pool.workers(), 2);
        for job in 1..=100u64 {
            pool.submit(job).expect("submit");
        }
        drop(pool); // graceful drain: every submitted job is handled
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn per_worker_init_runs_on_each_worker() {
        let inits = Arc::new(AtomicU64::new(0));
        let pool: PoolCore<u64> = {
            let inits = Arc::clone(&inits);
            PoolCore::spawn(
                "pool-core-init",
                3,
                move |_i| {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), _job| {},
            )
            .expect("spawn")
        };
        drop(pool);
        assert_eq!(inits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn draining_handler_can_coalesce_queued_jobs() {
        // One worker, jobs queued before spawn-side submission finishes:
        // the handler drains whatever is queued into one "batch" and
        // records batch sizes; every job must be covered exactly once.
        let sum = Arc::new(AtomicU64::new(0));
        let batches = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            let batches = Arc::clone(&batches);
            PoolCore::spawn_draining(
                "pool-core-drain",
                1,
                |_i| (),
                move |(), first: u64, drain| {
                    let mut total = first;
                    while let Some(next) = drain() {
                        total += next;
                    }
                    sum.fetch_add(total, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                },
            )
            .expect("spawn")
        };
        for job in 1..=100u64 {
            pool.submit(job).expect("submit");
        }
        drop(pool);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        // At least one handler invocation; at most one per job.
        let b = batches.load(Ordering::Relaxed);
        assert!((1..=100).contains(&b), "batches = {b}");
    }

    #[test]
    fn draining_is_not_blocked_by_idle_workers() {
        // Regression for the deadlock this queue design exists to prevent:
        // with 2+ workers, one worker sits idle while the other serves a
        // job and drains. With a mutex-wrapped `mpsc::Receiver` the idle
        // worker's blocking `recv` holds the lock, and the serving
        // worker's drain would stall until the *next* submit — with the
        // condvar queue the drain returns immediately and the job
        // completes without further submissions.
        let served = Arc::new(AtomicU64::new(0));
        let pool = {
            let served = Arc::clone(&served);
            PoolCore::spawn_draining(
                "pool-core-idle",
                2,
                |_i| (),
                move |(), job: u64, drain| {
                    let mut total = job;
                    while let Some(next) = drain() {
                        total += next;
                    }
                    served.fetch_add(total, Ordering::Relaxed);
                },
            )
            .expect("spawn")
        };
        // One lone job: some worker picks it up, the other stays idle.
        pool.submit(41).expect("submit");
        // Wait for completion *without* submitting anything else; a drain
        // deadlock would keep `served` at 0 forever.
        for _ in 0..2000 {
            if served.load(Ordering::Relaxed) == 41 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(served.load(Ordering::Relaxed), 41);
        drop(pool);
    }

    #[test]
    fn submit_after_worker_exit_returns_the_job() {
        let mut pool: PoolCore<u64> =
            PoolCore::spawn("pool-core-closed", 1, |_i| (), |(), _job| {}).expect("spawn");
        // Simulate the closed state Drop creates, without dropping.
        pool.channel.close();
        for handle in pool.workers.drain(..) {
            let _ = handle.join();
        }
        assert_eq!(pool.submit(7), Err(7));
        assert_eq!(pool.workers(), 0);
    }
}
