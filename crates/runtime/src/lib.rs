//! `revelio-runtime` — a concurrent explanation-serving runtime.
//!
//! The research crates answer *"is this explanation faithful?"*; this crate
//! answers *"can we serve it?"*. It wraps any [`Explainer`] in a
//! production-shaped serving loop:
//!
//! * **Worker pool** — a fixed set of `std::thread` workers fed from one
//!   mpsc queue ([`Runtime::new`]). The tensor engine is single-threaded by
//!   design, so jobs carry plain graph data and every worker materialises
//!   registered models locally from a [`ModelSpec`].
//! * **Determinism** — each job's explainer seed is derived from the
//!   runtime seed and the job's *submission* id, never from scheduling:
//!   the same jobs through 1 or 8 workers give bit-identical scores.
//! * **Artifact cache** — a sharded LRU ([`ArtifactCache`]) shares the
//!   pure per-instance artifacts (`L`-hop subgraphs, enumerated flows and
//!   their incidence matrices) across jobs and explainers.
//! * **Deadlines & graceful degradation** — per-job budgets are enforced
//!   cooperatively (explainers poll between epochs and return their best
//!   mask so far, flagged via [`Degradation`]); oversized instances shrink
//!   to a deterministic flow-prefix instead of failing.
//! * **Metrics** — an always-on atomic registry ([`MetricsSnapshot`]):
//!   queue depth, job counts, cache hit rate, per-stage latency.
//!
//! ```no_run
//! use revelio_runtime::{ExplainJob, Runtime};
//! # fn demo(model: &revelio_gnn::Gnn, graph: revelio_graph::Graph) {
//! let rt = Runtime::new(4);
//! let handle = rt.register_model(model);
//! let job = ExplainJob::flow_based(
//!     graph,
//!     revelio_graph::Target::Node(0),
//!     /* graph_id = */ 7,
//!     /* max_flows = */ 100_000,
//!     Box::new(|seed| {
//!         Box::new(revelio_core::Revelio::new(revelio_core::RevelioConfig {
//!             seed,
//!             ..Default::default()
//!         }))
//!     }),
//! );
//! let output = rt.submit(handle, job).wait().expect("served");
//! println!("degraded: {}", output.degraded());
//! println!("{}", rt.metrics_report());
//! # }
//! ```
//!
//! [`Explainer`]: revelio_core::Explainer
//! [`Degradation`]: revelio_core::Degradation

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod cache;
mod job;
mod metrics;
mod pool;
mod pool_core;
pub mod prometheus;
mod trace_store;

pub use cache::{ArtifactCache, CachedFlows, FlowKey, ShardedLru, SubgraphKey};
pub use job::{
    ExplainJob, ExplainerFactory, JobError, JobOutput, JobResult, JobTiming, ModelHandle,
    ModelSpec, Ticket,
};
pub use metrics::{
    Histogram, HistogramSnapshot, Metrics, MetricsCollector, MetricsSnapshot, SizeHistogram,
    SizeHistogramSnapshot, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US,
};
pub use pool::{Runtime, RuntimeBootError, RuntimeConfig, RuntimeConfigError, WorkerProbe};
pub use pool_core::PoolCore;
pub use trace_store::TraceMiss;
