//! Prometheus text-format exposition of runtime metrics.
//!
//! Renders a [`MetricsSnapshot`] in the [text exposition format] a
//! Prometheus server scrapes: `# HELP` / `# TYPE` headers, cumulative
//! `_bucket{le="…"}` series ending in `+Inf`, and `_sum` / `_count` pairs.
//! Durations are converted to **seconds** (the Prometheus base unit); the
//! internal µs histograms map directly because bucket upper bounds are
//! fixed. A small structural parser ([`parse_exposition`]) backs the
//! round-trip tests and lets `revelio-top` sanity-check what a server
//! emits.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::collections::BTreeMap;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, SizeHistogramSnapshot};
use crate::{BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US};

/// Appends one `counter` family with a single sample.
pub fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} counter\n"));
    out.push_str(&format!("{name} {value}\n"));
}

/// Appends one `gauge` family with a single sample.
pub fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} gauge\n"));
    out.push_str(&format!("{name} {value}\n"));
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Appends one `histogram` family (seconds) from a µs latency histogram:
/// cumulative `_bucket` series (ending in `le="+Inf"`), `_sum`, `_count`.
pub fn push_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (i, &bound_us) in LATENCY_BUCKETS_US.iter().enumerate() {
        cum += h.buckets[i];
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}\n",
            seconds(bound_us)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", seconds(h.total_us)));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Appends one `histogram` family from a unitless size histogram (e.g.
/// fused-batch widths): cumulative `_bucket` series, `_sum`, `_count`.
pub fn push_size_histogram(out: &mut String, name: &str, help: &str, h: &SizeHistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (i, &bound) in BATCH_SIZE_BUCKETS.iter().enumerate() {
        cum += h.buckets[i];
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.total));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Appends the quantile-estimate gauges for one latency stage as a shared
/// family `revelio_latency_quantile_seconds{stage=…,quantile=…}`. The
/// `# HELP`/`# TYPE` header is emitted once by [`render_metrics`].
fn push_quantiles(out: &mut String, stage: &str, h: &HistogramSnapshot) {
    for (q, v) in [
        ("0.5", h.p50_us()),
        ("0.9", h.p90_us()),
        ("0.99", h.p99_us()),
    ] {
        out.push_str(&format!(
            "revelio_latency_quantile_seconds{{stage=\"{stage}\",quantile=\"{q}\"}} {}\n",
            seconds(v)
        ));
    }
}

/// The named latency stages a snapshot exposes, with their histograms.
fn stages(s: &MetricsSnapshot) -> [(&'static str, &HistogramSnapshot); 7] {
    [
        ("queue_wait", &s.queue_wait),
        ("prep", &s.prep_latency),
        ("explain", &s.explain_latency),
        ("extraction", &s.phase_extraction),
        ("flow_index", &s.phase_flow_index),
        ("optimize", &s.phase_optimize),
        ("readout", &s.phase_readout),
    ]
}

/// Renders the full runtime snapshot as Prometheus text exposition.
pub fn render_metrics(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in [
        (
            "revelio_jobs_submitted_total",
            "Jobs accepted into the queue.",
            s.jobs_submitted,
        ),
        (
            "revelio_jobs_started_total",
            "Jobs picked up by a worker.",
            s.jobs_started,
        ),
        (
            "revelio_jobs_completed_total",
            "Jobs that produced an explanation.",
            s.jobs_completed,
        ),
        (
            "revelio_jobs_degraded_total",
            "Completed jobs with a degraded answer.",
            s.jobs_degraded,
        ),
        (
            "revelio_jobs_failed_total",
            "Jobs that panicked or were cancelled.",
            s.jobs_failed,
        ),
        (
            "revelio_jobs_rejected_total",
            "Jobs shed by admission control.",
            s.jobs_rejected,
        ),
        (
            "revelio_cache_hits_total",
            "Artifact-cache hits.",
            s.cache_hits,
        ),
        (
            "revelio_cache_misses_total",
            "Artifact-cache misses.",
            s.cache_misses,
        ),
        (
            "revelio_epochs_total",
            "Optimisation epochs run across all completed jobs.",
            s.epochs_total,
        ),
        (
            "revelio_store_hits_total",
            "Warm-start lookups answered from the persistent store.",
            s.store_hits,
        ),
        (
            "revelio_store_misses_total",
            "Warm-start lookups the store could not answer.",
            s.store_misses,
        ),
        (
            "revelio_batches_total",
            "Fused multi-job optimize passes executed.",
            s.batches,
        ),
        (
            "revelio_batched_jobs_total",
            "Jobs served through a fused batch.",
            s.batched_jobs,
        ),
    ] {
        push_counter(&mut out, name, help, value);
    }
    push_gauge(
        &mut out,
        "revelio_queue_depth",
        "Jobs submitted but not yet picked up by a worker.",
        s.queue_depth as f64,
    );
    for (stage, h) in stages(s) {
        let name = format!("revelio_latency_seconds_{stage}");
        // Per-stage metric names keep each histogram its own family (the
        // exposition format forbids a histogram family with extra labels
        // varying bucket layouts); the stage label lives on the quantile
        // gauges below.
        push_histogram(
            &mut out,
            &name,
            &format!("Latency of the {stage} stage in seconds."),
            h,
        );
    }
    push_size_histogram(
        &mut out,
        "revelio_batch_size",
        "Jobs fused per batched optimize pass.",
        &s.batch_size,
    );
    out.push_str(
        "# HELP revelio_latency_quantile_seconds \
         Latency quantile estimates (linear interpolation within bucket).\n",
    );
    out.push_str("# TYPE revelio_latency_quantile_seconds gauge\n");
    for (stage, h) in stages(s) {
        push_quantiles(&mut out, stage, h);
    }
    out
}

/// What a parsed exposition declares about one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyType {
    Counter,
    Gauge,
    Histogram,
    Untyped,
}

/// A structurally parsed exposition: declared families and their samples.
#[derive(Debug, Default)]
pub struct Exposition {
    /// `# TYPE` declarations, in order of appearance.
    pub families: BTreeMap<String, FamilyType>,
    /// Every sample line: full sample name (with suffix), labels text
    /// (empty when unlabelled), and value.
    pub samples: Vec<(String, String, f64)>,
}

impl Exposition {
    /// Samples belonging to family `name` (counting `_bucket`/`_sum`/
    /// `_count` suffixes for histograms).
    pub fn samples_of(&self, name: &str) -> Vec<&(String, String, f64)> {
        self.samples
            .iter()
            .filter(|(n, _, _)| {
                n == name
                    || (n.starts_with(name)
                        && matches!(&n[name.len()..], "_bucket" | "_sum" | "_count"))
            })
            .collect()
    }
}

/// Parses and structurally validates Prometheus text exposition:
///
/// * every sample belongs to a `# TYPE`-declared family;
/// * histogram families carry `_bucket` (cumulative, non-decreasing,
///   ending in `le="+Inf"`), `_sum`, and `_count`, with the `+Inf` bucket
///   equal to `_count`.
///
/// Returns the parsed structure, or a description of the first violation.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or(format!("line {lineno}: bare TYPE"))?;
            let ty = match it.next() {
                Some("counter") => FamilyType::Counter,
                Some("gauge") => FamilyType::Gauge,
                Some("histogram") => FamilyType::Histogram,
                Some("untyped") => FamilyType::Untyped,
                other => return Err(format!("line {lineno}: bad TYPE {other:?}")),
            };
            exp.families.insert(name.to_owned(), ty);
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unknown comment form"));
        }
        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: no value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: bad value {value:?}"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .ok_or(format!("line {lineno}: unterminated labels"))?;
                (n, l)
            }
            None => (name_labels, ""),
        };
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| exp.families.get(*base) == Some(&FamilyType::Histogram))
            })
            .unwrap_or(name);
        if !exp.families.contains_key(family) {
            return Err(format!("line {lineno}: sample {name} has no TYPE"));
        }
        exp.samples
            .push((name.to_owned(), labels.to_owned(), value));
    }
    // Histogram invariants.
    for (family, ty) in &exp.families {
        if *ty != FamilyType::Histogram {
            continue;
        }
        let buckets: Vec<&(String, String, f64)> = exp
            .samples
            .iter()
            .filter(|(n, _, _)| *n == format!("{family}_bucket"))
            .collect();
        if buckets.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        let mut prev = 0.0f64;
        for (_, labels, v) in &buckets {
            if !labels.contains("le=") {
                return Err(format!("histogram {family} bucket without le"));
            }
            if *v < prev {
                return Err(format!("histogram {family} buckets not cumulative"));
            }
            prev = *v;
        }
        let (_, last_labels, last_v) = buckets[buckets.len() - 1];
        if !last_labels.contains("le=\"+Inf\"") {
            return Err(format!("histogram {family} does not end in +Inf"));
        }
        let count = exp
            .samples
            .iter()
            .find(|(n, _, _)| *n == format!("{family}_count"))
            .ok_or(format!("histogram {family} has no _count"))?
            .2;
        if exp
            .samples
            .iter()
            .all(|(n, _, _)| *n != format!("{family}_sum"))
        {
            return Err(format!("histogram {family} has no _sum"));
        }
        if (count - last_v).abs() > f64::EPSILON {
            return Err(format!(
                "histogram {family}: +Inf bucket {last_v} != count {count}"
            ));
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::time::Duration;

    #[test]
    fn render_parses_and_round_trips_counts() {
        let m = Metrics::default();
        m.jobs_submitted
            .fetch_add(3, revelio_check::sync::atomic::Ordering::Relaxed);
        m.explain_latency.observe(Duration::from_millis(5));
        m.explain_latency.observe(Duration::from_secs(2));
        m.phase_optimize.observe(Duration::from_millis(40));
        let text = render_metrics(&m.snapshot(2, 1));
        let exp = parse_exposition(&text).expect("valid exposition");
        assert_eq!(
            exp.families.get("revelio_jobs_submitted_total"),
            Some(&FamilyType::Counter)
        );
        assert_eq!(
            exp.families.get("revelio_latency_seconds_explain"),
            Some(&FamilyType::Histogram)
        );
        let count = exp
            .samples
            .iter()
            .find(|(n, _, _)| n == "revelio_latency_seconds_explain_count")
            .expect("count sample");
        assert_eq!(count.2, 2.0);
        // Quantile gauges carry stage labels.
        assert!(text.contains("stage=\"optimize\",quantile=\"0.99\""));
    }

    #[test]
    fn parser_rejects_structural_violations() {
        // Sample without a TYPE declaration.
        assert!(parse_exposition("orphan 1\n").is_err());
        // Histogram without +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 0.1\nh_count 1\n";
        assert!(parse_exposition(bad).is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\n\
                   h_bucket{le=\"+Inf\"} 1\nh_sum 0.1\nh_count 1\n";
        assert!(parse_exposition(bad).is_err());
        // +Inf disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.1\nh_count 2\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    fn empty_snapshot_renders_validly() {
        let text = render_metrics(&Metrics::default().snapshot(0, 0));
        let exp = parse_exposition(&text).expect("valid exposition");
        // Seven stage histograms plus the batch-size histogram are
        // declared even when empty.
        let histos = exp
            .families
            .values()
            .filter(|t| **t == FamilyType::Histogram)
            .count();
        assert_eq!(histos, 8);
    }

    #[test]
    fn batch_metrics_appear_in_exposition() {
        let m = Metrics::default();
        m.batches
            .fetch_add(2, revelio_check::sync::atomic::Ordering::Relaxed);
        m.batched_jobs
            .fetch_add(5, revelio_check::sync::atomic::Ordering::Relaxed);
        m.batch_size.observe(2);
        m.batch_size.observe(3);
        let text = render_metrics(&m.snapshot(0, 0));
        let exp = parse_exposition(&text).expect("valid exposition");
        assert_eq!(
            exp.families.get("revelio_batched_jobs_total"),
            Some(&FamilyType::Counter)
        );
        let sum = exp
            .samples
            .iter()
            .find(|(n, _, _)| n == "revelio_batch_size_sum")
            .expect("sum sample");
        assert_eq!(sum.2, 5.0);
    }
}
