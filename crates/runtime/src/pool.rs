//! The explanation-serving worker pool.
//!
//! A [`Runtime`] owns a fixed set of `std::thread` workers fed from one
//! mpsc queue. Because the tensor engine's autograd tape is `Rc`-based,
//! nothing tensor-shaped ever crosses a thread boundary: jobs carry plain
//! graph data, each worker materialises registered models locally from
//! their [`ModelSpec`], and results come back as plain score vectors.
//!
//! Determinism: every job's explainer is seeded from
//! `mix(runtime seed, job id)`, where the job id is the *submission* order.
//! Scheduling decides only *where* and *when* a job runs — never its
//! answer — so any worker count produces bit-identical scores.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

// The cancel flag stays on `std`'s `AtomicBool`: it is handed across the
// facade boundary to `revelio-core`'s `Deadline::with_cancel`. A sticky
// store/load flag has no interleaving the checker could narrow anyway.
use std::sync::atomic::AtomicBool;

use revelio_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use revelio_check::sync::{mpsc, thread, Arc, Mutex, MutexGuard};
use revelio_core::{
    BatchItem, BatchedOptimizer, ConvergedMask, Deadline, Degradation, ExplainControl, ExplainError,
};
use revelio_gnn::{Gnn, Instance};
use revelio_graph::FlowIndex;
use revelio_store::{
    ExplanationRecord, FlowsRecord, MaskKey, ModelRecord, PhaseSummary, Store, StoreError,
    StoredMask,
};
use revelio_trace::{Collector, EventKind, Phase, RingCollector, Tee, Trace, TraceHandle, TraceId};

use crate::cache::{ArtifactCache, CachedFlows};
use crate::job::{
    ExplainJob, JobError, JobOutput, JobResult, JobTiming, ModelHandle, ModelSpec, Ticket,
};
use crate::metrics::{Metrics, MetricsCollector, MetricsSnapshot};
use crate::pool_core::PoolCore;
use crate::trace_store::{TraceMiss, TraceStore};

/// Ring-journal capacity for traced jobs: 4096 events holds the spans plus
/// ~4000 epochs of per-epoch detail before drop-oldest kicks in.
const TRACE_RING_CAPACITY: usize = 4096;

/// Finished traces retained for [`Runtime::trace`] retrieval.
const TRACE_RETENTION: usize = 128;

/// Runtime construction parameters; [`RuntimeConfig::default`] matches
/// `Runtime::new(1)` except for the worker count.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Base seed mixed into every job's explainer seed.
    pub seed: u64,
    /// Total artifact-cache entries per artifact kind.
    pub cache_capacity: usize,
    /// Artifact-cache shards (lock-contention granularity).
    pub cache_shards: usize,
    /// Deadline applied to jobs that don't set their own (`None` =
    /// unbounded).
    pub default_deadline: Option<Duration>,
    /// Maximum jobs fused into one batched optimize pass. `1` (the
    /// default) disables batching entirely; with a larger value a worker
    /// opportunistically drains queued jobs that share the first job's
    /// model and [`ExplainJob::batch_spec`] into one
    /// [`BatchedOptimizer`] run. Batched answers match the serial path
    /// within [`BATCH_TOLERANCE`].
    ///
    /// [`BatchedOptimizer`]: revelio_core::BatchedOptimizer
    /// [`BATCH_TOLERANCE`]: revelio_core::BATCH_TOLERANCE
    pub max_batch: usize,
    /// How long a worker holding a single batchable job waits for a
    /// compatible peer to arrive before running it alone. Only consulted
    /// when `max_batch > 1` and the queue is momentarily empty.
    pub batch_linger: Duration,
}

/// A [`RuntimeConfig`] value the runtime refuses to run with.
///
/// Zero-sized resources used to be silently clamped up to 1, which made a
/// misconfigured deployment look like a deliberately tiny one; they are now
/// typed errors surfaced at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeConfigError {
    /// `workers == 0`: a runtime with no workers can never serve a job.
    ZeroWorkers,
    /// `cache_capacity == 0`: every artifact would be evicted before reuse.
    ZeroCacheCapacity,
    /// `cache_shards == 0`: the cache needs at least one shard.
    ZeroCacheShards,
    /// `max_batch == 0`: a zero-wide batch can never serve a job; use 1 to
    /// disable batching.
    ZeroMaxBatch,
}

impl std::fmt::Display for RuntimeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            RuntimeConfigError::ZeroCacheCapacity => {
                write!(f, "cache_capacity must be at least 1")
            }
            RuntimeConfigError::ZeroCacheShards => write!(f, "cache_shards must be at least 1"),
            RuntimeConfigError::ZeroMaxBatch => {
                write!(f, "max_batch must be at least 1 (1 disables batching)")
            }
        }
    }
}

impl std::error::Error for RuntimeConfigError {}

/// Why [`Runtime::try_with_config_and_store`] could not boot.
#[derive(Debug)]
pub enum RuntimeBootError {
    /// The configuration itself is unusable.
    Config(RuntimeConfigError),
    /// The store could not be read during recovery.
    Store(StoreError),
}

impl std::fmt::Display for RuntimeBootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeBootError::Config(e) => write!(f, "invalid runtime config: {e}"),
            RuntimeBootError::Store(e) => write!(f, "store recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeBootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeBootError::Config(e) => Some(e),
            RuntimeBootError::Store(e) => Some(e),
        }
    }
}

impl From<RuntimeConfigError> for RuntimeBootError {
    fn from(e: RuntimeConfigError) -> Self {
        RuntimeBootError::Config(e)
    }
}

impl From<StoreError> for RuntimeBootError {
    fn from(e: StoreError) -> Self {
        RuntimeBootError::Store(e)
    }
}

impl RuntimeConfig {
    /// Checks the configuration for values the runtime cannot honour.
    pub fn validate(&self) -> Result<(), RuntimeConfigError> {
        if self.workers == 0 {
            return Err(RuntimeConfigError::ZeroWorkers);
        }
        if self.cache_capacity == 0 {
            return Err(RuntimeConfigError::ZeroCacheCapacity);
        }
        if self.cache_shards == 0 {
            return Err(RuntimeConfigError::ZeroCacheShards);
        }
        if self.max_batch == 0 {
            return Err(RuntimeConfigError::ZeroMaxBatch);
        }
        Ok(())
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 1,
            seed: 0,
            cache_capacity: 256,
            cache_shards: 8,
            default_deadline: None,
            max_batch: 1,
            batch_linger: Duration::from_micros(500),
        }
    }
}

/// State shared between the runtime handle and every worker.
struct Shared {
    models: Mutex<Vec<Arc<ModelSpec>>>,
    cache: ArtifactCache,
    metrics: Arc<Metrics>,
    /// The always-on trace→metrics bridge every job's handle forwards to.
    bridge: Arc<MetricsCollector>,
    /// Finished traces of traced jobs, bounded drop-oldest.
    traces: TraceStore,
    cancel: Arc<AtomicBool>,
    alive_workers: AtomicUsize,
    /// Jobs accepted but not yet answered (queued + running); the
    /// admission-control signal read by [`Runtime::try_submit`].
    in_flight: AtomicUsize,
    base_seed: u64,
    /// Write-behind persistence: registrations, flow tables, and finished
    /// explanations are appended here. `None` = in-memory-only runtime.
    store: Option<Arc<dyn Store>>,
    /// Maximum fused-batch width (`1` = batching off).
    max_batch: usize,
    /// Wait for a batch peer when the queue is momentarily empty.
    batch_linger: Duration,
}

/// Decrements the in-flight gauge exactly once per accepted job, however
/// the job leaves the runtime (answered, failed, cancelled, or dropped by a
/// panicking worker mid-explain).
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One queued request, as it travels to a worker.
struct QueuedJob {
    job_id: u64,
    handle: ModelHandle,
    job: ExplainJob,
    submitted: Instant,
    deadline_at: Option<Instant>,
    result_tx: mpsc::Sender<JobResult>,
}

/// The concurrent explanation-serving runtime.
///
/// Dropping the runtime closes the queue, lets the workers drain any
/// remaining jobs, and joins every thread. Call [`Runtime::cancel_all`]
/// first to abandon queued work instead of draining it.
pub struct Runtime {
    core: PoolCore<QueuedJob>,
    shared: Arc<Shared>,
    next_job_id: AtomicU64,
    default_deadline: Option<Duration>,
}

impl Runtime {
    /// A runtime with `workers` threads and default cache/deadline settings.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` (see [`Runtime::try_with_config`] for the
    /// non-panicking constructor).
    pub fn new(workers: usize) -> Runtime {
        Runtime::with_config(RuntimeConfig {
            workers,
            ..Default::default()
        })
    }

    /// Builds a runtime, or reports *why* the configuration is unusable
    /// (zero workers, zero cache capacity/shards) as a typed error.
    pub fn try_with_config(cfg: RuntimeConfig) -> Result<Runtime, RuntimeConfigError> {
        Runtime::build(cfg, None)
    }

    /// Builds a runtime with write-behind persistence, recovering the
    /// store's prior state first:
    ///
    /// * registered models are restored in id order (so recovered
    ///   [`ModelHandle`]s are the pre-restart ones),
    /// * persisted flow tables pre-warm the artifact cache (the incidence
    ///   matrices are rebuilt, not stored),
    /// * job-id assignment resumes past the highest stored job id, so
    ///   old explanations stay addressable and new ones never collide.
    ///
    /// # Errors
    ///
    /// [`RuntimeBootError::Config`] for an unusable configuration,
    /// [`RuntimeBootError::Store`] when the store cannot be read.
    pub fn try_with_config_and_store(
        cfg: RuntimeConfig,
        store: Arc<dyn Store>,
    ) -> Result<Runtime, RuntimeBootError> {
        let rt = Runtime::build(cfg, Some(Arc::clone(&store)))?;

        // Models, in ascending id order. Each goes straight into the
        // registry (not through `register_model`, which would re-append
        // what we just read).
        let recovered = store.models()?;
        {
            let mut models = lock(&rt.shared.models);
            for rec in recovered {
                models.push(Arc::new(ModelSpec::from_parts(rec.config, rec.state)));
            }
        }

        // Flow tables pre-warm the artifact cache; a table the rebuilt
        // index rejects (it was persisted by a different build) is skipped,
        // and the next job simply re-enumerates.
        for rec in store.flows()? {
            let Ok(index) = FlowIndex::from_parts(
                rec.layers as usize,
                rec.layer_edge_count as usize,
                rec.flow_edges,
            ) else {
                continue;
            };
            rt.shared.cache.insert_flow_index(
                (
                    rec.graph_id,
                    rec.target,
                    rec.layers as usize,
                    rec.max_flows as usize,
                ),
                CachedFlows {
                    index: Arc::new(index),
                    dropped: rec.dropped,
                },
            );
        }

        // Resume job-id assignment past everything already persisted.
        let max_job = store
            .list_explanations()?
            .iter()
            .map(|s| s.job_id)
            .max()
            .map_or(0, |m| m + 1);
        rt.next_job_id.fetch_max(max_job, Ordering::Relaxed);

        Ok(rt)
    }

    fn build(
        cfg: RuntimeConfig,
        store: Option<Arc<dyn Store>>,
    ) -> Result<Runtime, RuntimeConfigError> {
        cfg.validate()?;
        let workers = cfg.workers;
        let metrics = Arc::new(Metrics::default());
        let shared = Arc::new(Shared {
            models: Mutex::new(Vec::new()),
            cache: ArtifactCache::new(cfg.cache_shards, cfg.cache_capacity),
            bridge: Arc::new(MetricsCollector::new(Arc::clone(&metrics))),
            metrics,
            traces: TraceStore::new(TRACE_RETENTION),
            cancel: Arc::new(AtomicBool::new(false)),
            alive_workers: AtomicUsize::new(workers),
            in_flight: AtomicUsize::new(0),
            base_seed: cfg.seed,
            store,
            max_batch: cfg.max_batch,
            batch_linger: cfg.batch_linger,
        });
        let core = {
            let shared_init = Arc::clone(&shared);
            let shared_serve = Arc::clone(&shared);
            PoolCore::spawn_draining(
                "revelio-worker",
                workers,
                // Per-worker state is built on the worker thread: `Gnn`s
                // hold `Rc`-based tensors and must never cross threads.
                move |_i| WorkerState {
                    local_models: HashMap::new(),
                    _alive: AliveGuard(Arc::clone(&shared_init)),
                },
                move |state, q, drain| serve_entry(state, &shared_serve, q, drain),
            )
            .unwrap_or_else(|e| panic!("failed to spawn workers: {e}"))
        };
        Ok(Runtime {
            core,
            shared,
            next_job_id: AtomicU64::new(0),
            default_deadline: cfg.default_deadline,
        })
    }

    /// [`Runtime::try_with_config`], panicking on an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`RuntimeConfigError`] message when `cfg` fails
    /// [`RuntimeConfig::validate`].
    pub fn with_config(cfg: RuntimeConfig) -> Runtime {
        Runtime::try_with_config(cfg).unwrap_or_else(|e| panic!("invalid RuntimeConfig: {e}"))
    }

    /// Registers a model for serving; the returned handle is what jobs
    /// reference. The model's weights are captured *now* — later training
    /// on the original does not affect registered jobs.
    pub fn register_model(&self, model: &Gnn) -> ModelHandle {
        let spec = Arc::new(ModelSpec::of(model));
        let mut models = lock(&self.shared.models);
        models.push(Arc::clone(&spec));
        let handle = ModelHandle(models.len() - 1);
        drop(models);
        if let Some(store) = &self.shared.store {
            // Write-behind: persistence failure must not fail the (already
            // completed) in-memory registration.
            let _ = store.put_model(&ModelRecord {
                model_id: handle.0 as u32,
                fingerprint: spec.fingerprint(),
                config: spec.config().clone(),
                state: spec.state().to_vec(),
            });
        }
        handle
    }

    /// Handles for every registered model, in registration (= recovery)
    /// order. After [`Runtime::try_with_config_and_store`] these are the
    /// pre-restart handles.
    pub fn model_handles(&self) -> Vec<ModelHandle> {
        (0..lock(&self.shared.models).len())
            .map(ModelHandle)
            .collect()
    }

    /// Enqueues one job if the runtime has room, or hands the job back.
    ///
    /// Admission control for callers that must bound latency: when
    /// [`Runtime::in_flight`] (queued + running jobs) is already at
    /// `max_in_flight`, the job is *not* queued — it is returned unchanged
    /// so the caller can shed it (e.g. answer `Busy` over the network) —
    /// and the rejection is counted in
    /// [`MetricsSnapshot::jobs_rejected`].
    ///
    /// The check and the enqueue are not atomic with respect to other
    /// submitters, so the bound is approximate under concurrent submission
    /// (off by at most the number of simultaneous submitters) — fine for
    /// load shedding, where the limit is a watermark rather than an exact
    /// capacity.
    ///
    /// [`MetricsSnapshot::jobs_rejected`]: crate::MetricsSnapshot
    // The large Err variant is the point: the rejected job goes back to
    // the caller intact so nothing about it is lost in the shed path.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        handle: ModelHandle,
        job: ExplainJob,
        max_in_flight: usize,
    ) -> Result<Ticket, ExplainJob> {
        if self.in_flight() >= max_in_flight {
            self.shared
                .metrics
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        Ok(self.submit(handle, job))
    }

    /// Enqueues one job; returns immediately with a [`Ticket`] for its
    /// result.
    ///
    /// `submit` never blocks and never refuses: the queue is unbounded.
    /// Servers that must shed load instead of queueing use
    /// [`Runtime::try_submit`].
    pub fn submit(&self, handle: ModelHandle, job: ExplainJob) -> Ticket {
        let job_id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        let (result_tx, result_rx) = mpsc::channel();
        let budget = job.deadline.or(self.default_deadline);
        let queued = QueuedJob {
            job_id,
            handle,
            job,
            submitted: Instant::now(),
            deadline_at: budget.map(|b| Instant::now() + b),
            result_tx,
        };
        self.shared
            .metrics
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .metrics
            .queue_depth
            .fetch_add(1, Ordering::Relaxed);
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if let Err(q) = self.core.submit(queued) {
            // Every worker exited (cannot normally happen while the
            // runtime is alive); fail the job rather than hang.
            self.shared
                .metrics
                .queue_depth
                .fetch_sub(1, Ordering::Relaxed);
            self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.shared
                .metrics
                .jobs_failed
                .fetch_add(1, Ordering::Relaxed);
            let _ = q.result_tx.send(Err(JobError::Lost));
        }
        Ticket {
            job_id,
            rx: result_rx,
        }
    }

    /// Submits every job and blocks until all results are in, returned in
    /// submission order.
    pub fn explain_batch(&self, handle: ModelHandle, jobs: Vec<ExplainJob>) -> Vec<JobResult> {
        let tickets: Vec<Ticket> = jobs.into_iter().map(|j| self.submit(handle, j)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Abandons queued (and in-flight, at the next deadline poll) work:
    /// queued jobs fail with [`JobError::Cancelled`], running optimisation
    /// loops stop at their next epoch and report a degraded answer.
    ///
    /// Semantics in detail:
    ///
    /// * Cancellation is **sticky and runtime-wide** — there is no per-job
    ///   cancel and no un-cancel; jobs submitted after the call also fail
    ///   with [`JobError::Cancelled`].
    /// * Jobs a worker has already started are **not** killed: their
    ///   deadline polls observe the cancel flag at the next optimisation
    ///   epoch, so they return their best-so-far answer with
    ///   `degradation.deadline_hit == true` (non-iterative explainers run
    ///   to completion).
    /// * Every outstanding [`Ticket`] still resolves — cancellation never
    ///   strands a waiter.
    ///
    /// The typical shutdown sequence is `cancel_all()` followed by dropping
    /// the runtime; dropping *without* cancelling instead drains the queue
    /// completely.
    pub fn cancel_all(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.shared.metrics.queue_depth.load(Ordering::Relaxed)
    }

    /// Jobs accepted and not yet answered (queued **plus** running) — the
    /// signal [`Runtime::try_submit`] sheds on.
    ///
    /// The gauge is released an instant *after* a job's result is
    /// delivered (the worker's accounting guard drops at the end of the
    /// iteration), so a caller that just observed a ticket resolve may
    /// still see the slot occupied for a moment.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Point-in-time metrics (counters, histograms, cache hit rate).
    pub fn metrics(&self) -> MetricsSnapshot {
        let (hits, misses) = self.shared.cache.stats();
        self.shared.metrics.snapshot(hits, misses)
    }

    /// Renders [`Runtime::metrics`] as a human-readable report.
    pub fn metrics_report(&self) -> String {
        self.metrics().report()
    }

    /// The shared artifact cache (also usable directly, e.g. by the eval
    /// harness on its serial path).
    pub fn cache(&self) -> &ArtifactCache {
        &self.shared.cache
    }

    /// The retained trace of a finished traced job ([`ExplainJob::trace`]),
    /// keyed by its job id. `None` if the job was untraced, has not
    /// finished, or the trace was evicted from the bounded retention
    /// window.
    pub fn trace(&self, trace_id: u64) -> Option<Trace> {
        self.shared.traces.get(TraceId(trace_id))
    }

    /// Like [`Runtime::trace`], but a miss says *why*: evicted from the
    /// bounded retention window, or never retained under that id.
    pub fn fetch_trace(&self, trace_id: u64) -> Result<Trace, TraceMiss> {
        self.shared.traces.fetch(TraceId(trace_id))
    }

    /// The most recently retained trace, if any traced job has finished
    /// (the `revelio-top --trace newest` path).
    pub fn newest_trace(&self) -> Option<Trace> {
        self.shared.traces.newest()
    }

    /// Workers currently alive; drops to 0 only after the runtime is
    /// dropped (exposed for leak tests).
    pub fn alive_workers(&self) -> usize {
        self.shared.alive_workers.load(Ordering::Relaxed)
    }

    /// A clone of the shared worker-liveness counter, for observing the
    /// drain *after* the runtime is dropped.
    pub fn worker_probe(&self) -> WorkerProbe {
        WorkerProbe {
            shared: Arc::clone(&self.shared),
        }
    }
}

// No `Drop` impl: dropping `core` closes the queue, drains it, and joins
// every worker — the runtime's graceful shutdown is `PoolCore`'s.

/// Observes worker liveness independently of the [`Runtime`]'s lifetime.
pub struct WorkerProbe {
    shared: Arc<Shared>,
}

impl WorkerProbe {
    /// Workers still running.
    pub fn alive_workers(&self) -> usize {
        self.shared.alive_workers.load(Ordering::Relaxed)
    }
}

/// Locks a mutex, riding through poisoning (a panicked job cannot corrupt
/// the registry or cache: panics are caught per job, and the data is
/// only ever appended/replaced atomically).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// SplitMix64-style mix of the runtime seed and the job's submission id.
/// Job ids are assigned at submission, so the derived seed — and therefore
/// the explainer's answer — is independent of scheduling.
fn derive_seed(base: u64, job_id: u64) -> u64 {
    let mut z = base ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decrements the liveness counter when the worker exits, however it exits.
struct AliveGuard(Arc<Shared>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.alive_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-worker state, built by [`PoolCore`]'s `init` on the worker thread.
struct WorkerState {
    /// Models this worker has already materialised, keyed by handle index.
    local_models: HashMap<usize, Gnn>,
    _alive: AliveGuard,
}

/// Whether a queued job may enter a fused batch at all. Batched execution
/// has no per-job deadline polling, tracing, or warm-start seeding, so jobs
/// using any of those stay on the serial path.
fn batch_eligible(q: &QueuedJob) -> bool {
    q.job.batch_spec.is_some()
        && q.job.needs_flows
        && !q.job.warm_start
        && !q.job.trace
        && q.deadline_at.is_none()
}

/// Whether `next` can join a batch opened by `first` (same model, equal
/// REVELIO config).
fn batch_compatible(first: &QueuedJob, next: &QueuedJob) -> bool {
    batch_eligible(next)
        && next.handle == first.handle
        && next.job.batch_spec == first.job.batch_spec
}

/// [`PoolCore`]'s handler: serves the dequeued job, opportunistically
/// draining compatible queued jobs into one fused optimize pass when
/// batching is enabled ([`RuntimeConfig::max_batch`] `> 1`).
fn serve_entry(
    state: &mut WorkerState,
    shared: &Shared,
    first: QueuedJob,
    drain: &mut dyn FnMut() -> Option<QueuedJob>,
) {
    if shared.max_batch <= 1 || !batch_eligible(&first) {
        serve_job(state, shared, first);
        return;
    }
    let mut batch = vec![first];
    // A drained job that cannot join the batch is served (serially) right
    // after it — never re-queued, so intra-model submission order is
    // preserved per worker.
    let mut follower: Option<QueuedJob> = None;
    let mut lingered = false;
    while batch.len() < shared.max_batch {
        match drain() {
            Some(q) => {
                if batch_compatible(&batch[0], &q) {
                    batch.push(q);
                } else {
                    follower = Some(q);
                    break;
                }
            }
            None if !lingered && !shared.batch_linger.is_zero() => {
                // Give an in-flight burst one chance to land a peer.
                thread::sleep(shared.batch_linger);
                lingered = true;
            }
            None => break,
        }
    }
    if batch.len() == 1 {
        let only = batch.pop().expect("len checked");
        serve_job(state, shared, only);
    } else {
        serve_fused_batch(state, shared, batch);
    }
    if let Some(q) = follower {
        serve_job(state, shared, q);
    }
}

/// Everything retained per job across the fused batch's prep stage.
struct PreppedJob {
    job_id: u64,
    queue_wait: Duration,
    result_tx: mpsc::Sender<JobResult>,
    instance: Instance,
    flow_index: Arc<FlowIndex>,
    flows_dropped: u64,
    graph_id: u64,
}

/// Serves `batch` (≥ 2 jobs sharing one model and config) through a single
/// [`BatchedOptimizer`] pass. Per-job accounting mirrors [`serve_job`];
/// named-phase histograms and warm-start mask persistence are skipped
/// (batched jobs are cold-start by eligibility).
fn serve_fused_batch(state: &mut WorkerState, shared: &Shared, batch: Vec<QueuedJob>) {
    let metrics = &shared.metrics;
    // One in-flight decrement per job, however the batch ends.
    let _guards: Vec<InFlightGuard<'_>> = batch
        .iter()
        .map(|_| InFlightGuard(&shared.in_flight))
        .collect();
    for q in &batch {
        metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        metrics.jobs_started.fetch_add(1, Ordering::Relaxed);
        metrics.queue_wait.observe(q.submitted.elapsed());
    }

    if shared.cancel.load(Ordering::Relaxed) {
        for q in batch {
            metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = q.result_tx.send(Err(JobError::Cancelled));
        }
        return;
    }

    let handle = batch[0].handle;
    let cfg = batch[0]
        .job
        .batch_spec
        .expect("batch_eligible requires a spec");
    let spec = lock(&shared.models).get(handle.0).map(Arc::clone);
    let Some(spec) = spec else {
        for q in batch {
            metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = q.result_tx.send(Err(JobError::UnknownModel));
        }
        return;
    };
    let model = state
        .local_models
        .entry(handle.0)
        .or_insert_with(|| spec.materialize());

    // Per-job prep: instance forward pass + cache-shared flow index.
    let prep_start = Instant::now();
    let mut prepped: Vec<PreppedJob> = Vec::with_capacity(batch.len());
    for q in batch {
        let QueuedJob {
            job_id,
            job,
            submitted,
            result_tx,
            ..
        } = q;
        let queue_wait = submitted.elapsed();
        let instance = Instance::for_prediction(model, job.graph, job.target);
        let (cached, hit) = shared.cache.flow_index_probed(
            job.graph_id,
            &instance.mp,
            model.num_layers(),
            instance.target,
            job.max_flows,
        );
        if !hit {
            if let Some(store) = &shared.store {
                let _ = store.put_flows(&FlowsRecord {
                    graph_id: job.graph_id,
                    target: instance.target,
                    layers: model.num_layers() as u32,
                    max_flows: job.max_flows as u64,
                    layer_edge_count: instance.mp.layer_edge_count() as u32,
                    flow_edges: cached.index.flow_edges().to_vec(),
                    dropped: cached.dropped,
                });
            }
        }
        if !job.shrink_on_overflow && cached.dropped > 0 {
            metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = result_tx.send(Err(JobError::TooManyFlows {
                dropped: cached.dropped,
            }));
            continue;
        }
        prepped.push(PreppedJob {
            job_id,
            queue_wait,
            result_tx,
            instance,
            flow_index: cached.index,
            flows_dropped: cached.dropped,
            graph_id: job.graph_id,
        });
    }
    if prepped.is_empty() {
        return;
    }
    let n = prepped.len();
    let prep_share = prep_start.elapsed() / n as u32;
    for _ in 0..n {
        metrics.prep_latency.observe(prep_share);
    }

    let items: Vec<BatchItem<'_>> = prepped
        .iter()
        .map(|p| BatchItem {
            instance: &p.instance,
            seed: derive_seed(shared.base_seed, p.job_id),
            flow_index: Some(Arc::clone(&p.flow_index)),
        })
        .collect();
    let optimizer = BatchedOptimizer::new(cfg);
    let explain_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| optimizer.explain_batch(model, &items)));
    let explain_elapsed = explain_start.elapsed();
    let explain_share = explain_elapsed / n as u32;
    drop(items);

    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics.batched_jobs.fetch_add(n as u64, Ordering::Relaxed);
    metrics.batch_size.observe(n as u64);

    let failure = match outcome {
        Ok(Ok(explanations)) => {
            for (p, explanation) in prepped.into_iter().zip(explanations) {
                metrics.explain_latency.observe(explain_share);
                metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                metrics
                    .epochs_total
                    .fetch_add(cfg.epochs as u64, Ordering::Relaxed);
                let degradation = Degradation {
                    deadline_hit: false,
                    epochs_run: cfg.epochs,
                    epochs_planned: cfg.epochs,
                    flows_dropped: p.flows_dropped,
                };
                if degradation.is_degraded() {
                    metrics.jobs_degraded.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(store) = &shared.store {
                    let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
                    let _ = store.put_explanation(&ExplanationRecord {
                        job_id: p.job_id,
                        key: MaskKey {
                            model_id: handle.0 as u32,
                            graph_id: p.graph_id,
                            target: p.instance.target,
                            layers: model.num_layers() as u32,
                        },
                        model_fingerprint: spec.fingerprint(),
                        edge_scores: explanation.edge_scores.clone(),
                        layer_edge_scores: explanation.layer_edge_scores.clone(),
                        flow_scores: explanation.flows.as_ref().map(|f| f.scores.clone()),
                        degradation,
                        phases: PhaseSummary {
                            queue_us: us(p.queue_wait),
                            prep_us: us(prep_share),
                            explain_us: us(explain_share),
                        },
                        // Batched runs keep masks stacked across jobs, so
                        // no per-job converged mask is persisted.
                        mask: None,
                    });
                }
                let _ = p.result_tx.send(Ok(JobOutput {
                    job_id: p.job_id,
                    explanation,
                    degradation,
                    timing: JobTiming {
                        queue_wait: p.queue_wait,
                        prep: prep_share,
                        explain: explain_share,
                    },
                    trace: None,
                }));
            }
            return;
        }
        Ok(Err(ExplainError::TooManyFlows(e))) => JobError::TooManyFlows {
            dropped: e.found.saturating_sub(e.max as u64),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            JobError::Panicked(msg)
        }
    };
    for p in prepped {
        metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        let _ = p.result_tx.send(Err(failure.clone()));
    }
}

/// Serves one dequeued job: [`PoolCore`]'s per-job handler.
fn serve_job(state: &mut WorkerState, shared: &Shared, q: QueuedJob) {
    let _in_flight = InFlightGuard(&shared.in_flight);
    let metrics = &shared.metrics;
    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
    metrics.jobs_started.fetch_add(1, Ordering::Relaxed);
    let queue_wait = q.submitted.elapsed();
    metrics.queue_wait.observe(queue_wait);

    if shared.cancel.load(Ordering::Relaxed) {
        metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        let _ = q.result_tx.send(Err(JobError::Cancelled));
        return;
    }

    let spec = lock(&shared.models).get(q.handle.0).map(Arc::clone);
    let Some(spec) = spec else {
        metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        let _ = q.result_tx.send(Err(JobError::UnknownModel));
        return;
    };

    let job = q.job;
    // Every job gets a trace handle: untraced jobs forward only to the
    // metrics bridge (phase histograms), traced jobs additionally
    // journal into a per-job ring drained after the explainer returns.
    let ring = if job.trace {
        Some(Arc::new(RingCollector::new(TRACE_RING_CAPACITY)))
    } else {
        None
    };
    let collector: Arc<dyn Collector> = match &ring {
        Some(r) => Arc::new(Tee(
            Arc::clone(r) as Arc<dyn Collector>,
            Arc::clone(&shared.bridge) as Arc<dyn Collector>,
        )),
        None => Arc::clone(&shared.bridge) as Arc<dyn Collector>,
    };
    // Distributed callers key the trace under the global trace id's low
    // half so the fragment is fetchable fleet-wide; local jobs keep the
    // job-id keying.
    let trace_id = TraceId(job.trace_key.unwrap_or(q.job_id));
    let tr = TraceHandle::new(trace_id, collector);

    // Prep stage: local model, instance forward pass, flow artifacts.
    let prep_start = Instant::now();
    let extraction_span = tr.span(Phase::Extraction);
    let model = state
        .local_models
        .entry(q.handle.0)
        .or_insert_with(|| spec.materialize());
    let instance = Instance::for_prediction(model, job.graph, job.target);
    drop(extraction_span);
    let (flow_index, cache_flows_dropped) = if job.needs_flows {
        let flow_span = tr.span(Phase::FlowIndex);
        let (cached, hit) = shared.cache.flow_index_probed(
            job.graph_id,
            &instance.mp,
            model.num_layers(),
            instance.target,
            job.max_flows,
        );
        drop(flow_span);
        tr.event(EventKind::CacheProbe { hit });
        if !hit {
            if let Some(store) = &shared.store {
                // Persist freshly enumerated flow tables (write-behind, so
                // a failed append costs only a re-enumeration after
                // restart, never the job).
                let _ = store.put_flows(&FlowsRecord {
                    graph_id: job.graph_id,
                    target: instance.target,
                    layers: model.num_layers() as u32,
                    max_flows: job.max_flows as u64,
                    layer_edge_count: instance.mp.layer_edge_count() as u32,
                    flow_edges: cached.index.flow_edges().to_vec(),
                    dropped: cached.dropped,
                });
            }
        }
        (Some(cached.index), cached.dropped)
    } else {
        (None, 0)
    };
    metrics.prep_latency.observe(prep_start.elapsed());

    if !job.shrink_on_overflow && cache_flows_dropped > 0 {
        // The job asked for an exact answer and the instance is over
        // budget: fail it instead of serving a silent prefix.
        metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        let _ = q.result_tx.send(Err(JobError::TooManyFlows {
            dropped: cache_flows_dropped,
        }));
        return;
    }

    // The store key for this job's converged mask: warm-start lookups and
    // the write-behind explanation record share it.
    let mask_key = MaskKey {
        model_id: q.handle.0 as u32,
        graph_id: job.graph_id,
        target: instance.target,
        layers: model.num_layers() as u32,
    };
    let warm_start = if job.warm_start {
        let usable = shared
            .store
            .as_ref()
            .and_then(|store| store.newest_mask(&mask_key).ok().flatten())
            // Staleness guard: the mask must have been learned against the
            // exact weights this runtime serves.
            .filter(|hit| hit.model_fingerprint == spec.fingerprint());
        match usable {
            Some(hit) => {
                metrics.store_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(ConvergedMask {
                    mask_params: hit.mask.mask_params,
                    layer_weights: hit.mask.layer_weights,
                    selected: hit.mask.selected,
                }))
            }
            None => {
                metrics.store_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    } else {
        None
    };

    let deadline = match q.deadline_at {
        Some(at) => Deadline::at(at),
        None => Deadline::none(),
    }
    .with_cancel(Arc::clone(&shared.cancel));
    let ctl = ExplainControl {
        deadline,
        flow_index,
        shrink_on_overflow: job.shrink_on_overflow,
        trace: Some(tr.clone()),
        warm_start,
    };

    let seed = derive_seed(shared.base_seed, q.job_id);
    let explain_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let explainer = (job.make_explainer)(seed);
        explainer.explain_controlled(model, &instance, &ctl)
    }));
    let explain_elapsed = explain_start.elapsed();
    metrics.explain_latency.observe(explain_elapsed);

    match outcome {
        Ok(mut controlled) => {
            // Flows dropped by the shared cache's capped build degrade
            // the answer just like an explainer-side shrink.
            controlled.degradation.flows_dropped += cache_flows_dropped;
            metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
            metrics
                .epochs_total
                .fetch_add(controlled.degradation.epochs_run as u64, Ordering::Relaxed);
            if controlled.degradation.is_degraded() {
                metrics.jobs_degraded.fetch_add(1, Ordering::Relaxed);
            }
            // Drain the journal into a plain trace: once into the
            // bounded retention store (for Runtime::trace / the wire
            // Trace request) and once alongside the result.
            let trace = ring.as_ref().map(|r| r.drain(trace_id));
            if let Some(t) = &trace {
                shared.traces.push(t.clone());
            }
            if let Some(store) = &shared.store {
                let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
                let _ = store.put_explanation(&ExplanationRecord {
                    job_id: q.job_id,
                    key: mask_key,
                    model_fingerprint: spec.fingerprint(),
                    edge_scores: controlled.explanation.edge_scores.clone(),
                    layer_edge_scores: controlled.explanation.layer_edge_scores.clone(),
                    flow_scores: controlled
                        .explanation
                        .flows
                        .as_ref()
                        .map(|f| f.scores.clone()),
                    degradation: controlled.degradation,
                    phases: PhaseSummary {
                        queue_us: us(queue_wait),
                        prep_us: us(explain_start - prep_start),
                        explain_us: us(explain_elapsed),
                    },
                    mask: controlled.converged_mask.as_ref().map(|m| StoredMask {
                        mask_params: m.mask_params.clone(),
                        layer_weights: m.layer_weights.clone(),
                        selected: m.selected.clone(),
                    }),
                });
            }
            let _ = q.result_tx.send(Ok(JobOutput {
                job_id: q.job_id,
                explanation: controlled.explanation,
                degradation: controlled.degradation,
                timing: JobTiming {
                    queue_wait,
                    prep: explain_start - prep_start,
                    explain: explain_elapsed,
                },
                trace,
            }));
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = q.result_tx.send(Err(JobError::Panicked(msg)));
        }
    }
}
