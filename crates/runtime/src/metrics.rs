//! Always-on runtime metrics: lock-free counters and latency histograms.
//!
//! Every counter is a relaxed atomic, so recording costs a few nanoseconds
//! and the registry can stay enabled in production. [`Metrics::snapshot`]
//! reads a consistent-enough point-in-time copy (individual counters are
//! exact; cross-counter skew is bounded by in-flight jobs), and
//! [`MetricsSnapshot::report`] renders it for humans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// unbounded. Spans 100µs … 10s, which covers both cache-hit flow prep and
/// full REVELIO optimisation runs.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

const NUM_BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    pub fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters (relaxed loads; buckets may be
    /// mutually slightly stale under concurrent `observe`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `(LATENCY_BUCKETS_US[i-1],
    /// LATENCY_BUCKETS_US[i]]` µs, the last bucket is unbounded above.
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// The runtime's metrics registry. One instance per [`Runtime`], shared by
/// every worker.
///
/// [`Runtime`]: crate::Runtime
#[derive(Default)]
pub struct Metrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_started: AtomicU64,
    pub jobs_completed: AtomicU64,
    /// Completed jobs whose answer was degraded (deadline hit or flow cap
    /// shrink); a subset of `jobs_completed`.
    pub jobs_degraded: AtomicU64,
    /// Jobs that panicked or were cancelled before producing an answer.
    pub jobs_failed: AtomicU64,
    /// Jobs shed by [`Runtime::try_submit`] admission control (never
    /// queued; not counted in `jobs_submitted`).
    ///
    /// [`Runtime::try_submit`]: crate::Runtime::try_submit
    pub jobs_rejected: AtomicU64,
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: AtomicU64,
    pub queue_wait: Histogram,
    /// Artifact-preparation stage (subgraph/flow enumeration or cache hit).
    pub prep_latency: Histogram,
    /// Explainer stage proper (mask optimisation / decomposition).
    pub explain_latency: Histogram,
}

impl Metrics {
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_started: self.jobs_started.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            queue_wait: self.queue_wait.snapshot(),
            prep_latency: self.prep_latency.snapshot(),
            explain_latency: self.explain_latency.snapshot(),
        }
    }
}

/// Point-in-time copy of every runtime metric; plain data, safe to ship
/// across threads or serialise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub jobs_submitted: u64,
    pub jobs_started: u64,
    pub jobs_completed: u64,
    pub jobs_degraded: u64,
    pub jobs_failed: u64,
    /// Jobs shed by admission control before queueing.
    pub jobs_rejected: u64,
    pub queue_depth: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub queue_wait: HistogramSnapshot,
    pub prep_latency: HistogramSnapshot,
    pub explain_latency: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]` (0 when the cache was never probed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as an aligned human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("runtime metrics\n");
        out.push_str(&format!(
            "  jobs      submitted={} started={} completed={} degraded={} failed={} rejected={}\n",
            self.jobs_submitted,
            self.jobs_started,
            self.jobs_completed,
            self.jobs_degraded,
            self.jobs_failed,
            self.jobs_rejected,
        ));
        out.push_str(&format!(
            "  queue     depth={} wait mean={}us max={}us\n",
            self.queue_depth,
            self.queue_wait.mean_us(),
            self.queue_wait.max_us,
        ));
        out.push_str(&format!(
            "  cache     hits={} misses={} hit_rate={:.1}%\n",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
        ));
        for (name, h) in [
            ("prep", &self.prep_latency),
            ("explain", &self.explain_latency),
        ] {
            out.push_str(&format!(
                "  {name:<9} n={} mean={}us max={}us buckets",
                h.count,
                h.mean_us(),
                h.max_us,
            ));
            for (i, b) in h.buckets.iter().enumerate() {
                let label = match LATENCY_BUCKETS_US.get(i) {
                    Some(&us) if us < 1_000 => format!("<={us}us"),
                    Some(&us) if us < 1_000_000 => format!("<={}ms", us / 1_000),
                    Some(&us) => format!("<={}s", us / 1_000_000),
                    None => "inf".to_owned(),
                };
                out.push_str(&format!(" {label}:{b}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50)); // bucket 0 (<=100us)
        h.observe(Duration::from_micros(500)); // bucket 1 (<=1ms)
        h.observe(Duration::from_secs(20)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(s.max_us, 20_000_000);
        assert_eq!(s.mean_us(), (50 + 500 + 20_000_000) / 3);
    }

    #[test]
    fn snapshot_and_report() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(4, Ordering::Relaxed);
        m.jobs_completed.fetch_add(3, Ordering::Relaxed);
        m.jobs_degraded.fetch_add(1, Ordering::Relaxed);
        m.explain_latency.observe(Duration::from_millis(5));
        let s = m.snapshot(3, 1);
        assert_eq!(s.jobs_submitted, 4);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        let report = s.report();
        assert!(report.contains("submitted=4"));
        assert!(report.contains("hit_rate=75.0%"));
        assert!(report.contains("explain"));
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Metrics::default().snapshot(0, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.queue_wait.mean_us(), 0);
    }
}
