//! Always-on runtime metrics: lock-free counters and latency histograms.
//!
//! Every counter is a relaxed atomic, so recording costs a few nanoseconds
//! and the registry can stay enabled in production. [`Metrics::snapshot`]
//! reads a consistent-enough point-in-time copy (individual counters are
//! exact; cross-counter skew is bounded by in-flight jobs), and
//! [`MetricsSnapshot::report`] renders it for humans.

use revelio_check::sync::atomic::{AtomicU64, Ordering};
use revelio_check::sync::Arc;
use std::time::Duration;

use revelio_trace::{Collector, Event, EventKind, Phase};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// unbounded. Spans 100µs … 10s, which covers both cache-hit flow prep and
/// full REVELIO optimisation runs.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

const NUM_BUCKETS: usize = LATENCY_BUCKETS_US.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    ///
    /// The four counters are updated with *independent* relaxed atomics, so
    /// a concurrent [`Histogram::snapshot`] can observe them mutually
    /// skewed: `max_us` may already reflect an observation whose `count` /
    /// `total_us` increments have not landed yet (and vice versa), which
    /// momentarily makes `max_us > total_us` or `mean_us() > max_us`
    /// possible. Each counter is individually exact once writers quiesce;
    /// consumers must not assume cross-field invariants mid-flight.
    pub fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters (relaxed loads; buckets may be
    /// mutually slightly stale under concurrent `observe`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `(LATENCY_BUCKETS_US[i-1],
    /// LATENCY_BUCKETS_US[i]]` µs, the last bucket is unbounded above.
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in microseconds by linear
    /// interpolation within the covering bucket. Bucket `i` spans
    /// `(LATENCY_BUCKETS_US[i-1], LATENCY_BUCKETS_US[i]]`; the unbounded
    /// overflow bucket is capped at the observed `max_us`, so the estimate
    /// never exceeds a value that actually occurred. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                let lo = if i == 0 { 0 } else { LATENCY_BUCKETS_US[i - 1] };
                let hi = match LATENCY_BUCKETS_US.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: cap at the observed maximum.
                    None => self.max_us.max(lo),
                };
                let frac = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            cum = next;
        }
        self.max_us
    }

    /// Median latency estimate in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 90th-percentile latency estimate in microseconds.
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// 99th-percentile latency estimate in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Folds `other` into `self`: per-bucket sums, summed counts/totals,
    /// max of maxima. Bucket bounds are compile-time constants shared by
    /// every histogram, so snapshots from different processes (e.g. a
    /// gateway rolling up its backend fleet) merge exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Upper bounds of the batch-size histogram buckets (number of jobs fused
/// into one optimize pass); the last bucket is unbounded.
pub const BATCH_SIZE_BUCKETS: [u64; 5] = [1, 2, 4, 8, 16];

const NUM_SIZE_BUCKETS: usize = BATCH_SIZE_BUCKETS.len() + 1;

/// A fixed-bucket histogram over small integer sizes (batch widths), with
/// the same relaxed-atomic caveats as [`Histogram`].
#[derive(Default)]
pub struct SizeHistogram {
    buckets: [AtomicU64; NUM_SIZE_BUCKETS],
    count: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

impl SizeHistogram {
    /// Records one size observation.
    pub fn observe(&self, size: u64) {
        let idx = BATCH_SIZE_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(NUM_SIZE_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(size, Ordering::Relaxed);
        self.max.fetch_max(size, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> SizeHistogramSnapshot {
        SizeHistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one [`SizeHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeHistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `(BATCH_SIZE_BUCKETS[i-1],
    /// BATCH_SIZE_BUCKETS[i]]`, the last bucket is unbounded above.
    pub buckets: [u64; NUM_SIZE_BUCKETS],
    pub count: u64,
    pub total: u64,
    pub max: u64,
}

impl SizeHistogramSnapshot {
    /// Mean observed size ×1000 (fixed-point, 0 when empty) — keeps the
    /// snapshot `Eq`/`Copy` without a float field.
    pub fn mean_milli(&self) -> u64 {
        (self.total * 1000).checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`; see [`HistogramSnapshot::merge`].
    pub fn merge(&mut self, other: &SizeHistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }
}

/// The runtime's metrics registry. One instance per [`Runtime`], shared by
/// every worker.
///
/// [`Runtime`]: crate::Runtime
#[derive(Default)]
pub struct Metrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_started: AtomicU64,
    pub jobs_completed: AtomicU64,
    /// Completed jobs whose answer was degraded (deadline hit or flow cap
    /// shrink); a subset of `jobs_completed`.
    pub jobs_degraded: AtomicU64,
    /// Jobs that panicked or were cancelled before producing an answer.
    pub jobs_failed: AtomicU64,
    /// Jobs shed by [`Runtime::try_submit`] admission control (never
    /// queued; not counted in `jobs_submitted`).
    ///
    /// [`Runtime::try_submit`]: crate::Runtime::try_submit
    pub jobs_rejected: AtomicU64,
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: AtomicU64,
    pub queue_wait: Histogram,
    /// Artifact-preparation stage (subgraph/flow enumeration or cache hit).
    pub prep_latency: Histogram,
    /// Explainer stage proper (mask optimisation / decomposition).
    pub explain_latency: Histogram,
    /// Named-phase breakdowns fed by the tracing bridge: subgraph/model
    /// materialisation.
    pub phase_extraction: Histogram,
    /// Named-phase breakdown: flow-index build (cache misses only; hits
    /// never enter the span).
    pub phase_flow_index: Histogram,
    /// Named-phase breakdown: mask-optimisation epoch loop.
    pub phase_optimize: Histogram,
    /// Named-phase breakdown: score readout / aggregation.
    pub phase_readout: Histogram,
    /// Total optimisation epochs run across all completed jobs.
    pub epochs_total: AtomicU64,
    /// Warm-start lookups that found a usable converged mask in the
    /// persistent store (matching key *and* model fingerprint).
    pub store_hits: AtomicU64,
    /// Warm-start lookups that found nothing usable (no store attached,
    /// no record for the key, stale fingerprint, or a read error).
    pub store_misses: AtomicU64,
    /// Fused multi-job optimize passes executed (each covers ≥2 jobs).
    pub batches: AtomicU64,
    /// Jobs served through a fused batch; a subset of `jobs_completed` +
    /// `jobs_failed`.
    pub batched_jobs: AtomicU64,
    /// Distribution of fused-batch widths (jobs per optimize pass).
    pub batch_size: SizeHistogram,
}

impl Metrics {
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_started: self.jobs_started.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            queue_wait: self.queue_wait.snapshot(),
            prep_latency: self.prep_latency.snapshot(),
            explain_latency: self.explain_latency.snapshot(),
            phase_extraction: self.phase_extraction.snapshot(),
            phase_flow_index: self.phase_flow_index.snapshot(),
            phase_optimize: self.phase_optimize.snapshot(),
            phase_readout: self.phase_readout.snapshot(),
            epochs_total: self.epochs_total.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// Bridges structured-trace span ends into the named-phase histograms.
///
/// Workers attach this collector to *every* job (traced or not) through a
/// [`TraceHandle`], so the per-phase breakdowns in [`MetricsSnapshot`] are
/// always populated. It is deliberately not [`Collector::verbose`]:
/// per-epoch loss/grad-norm events require extra tensor reads that an
/// always-on bridge must never force.
///
/// [`TraceHandle`]: revelio_trace::TraceHandle
pub struct MetricsCollector {
    metrics: Arc<Metrics>,
}

impl MetricsCollector {
    /// A bridge feeding `metrics`.
    pub fn new(metrics: Arc<Metrics>) -> MetricsCollector {
        MetricsCollector { metrics }
    }
}

impl Collector for MetricsCollector {
    fn record(&self, event: Event) {
        if let EventKind::SpanEnd { phase, dur_ns } = event.kind {
            let h = match phase {
                Phase::Extraction => &self.metrics.phase_extraction,
                Phase::FlowIndex => &self.metrics.phase_flow_index,
                Phase::Optimize => &self.metrics.phase_optimize,
                Phase::Readout => &self.metrics.phase_readout,
            };
            h.observe(Duration::from_nanos(dur_ns));
        }
    }
}

/// Point-in-time copy of every runtime metric; plain data, safe to ship
/// across threads or serialise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub jobs_submitted: u64,
    pub jobs_started: u64,
    pub jobs_completed: u64,
    pub jobs_degraded: u64,
    pub jobs_failed: u64,
    /// Jobs shed by admission control before queueing.
    pub jobs_rejected: u64,
    pub queue_depth: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub queue_wait: HistogramSnapshot,
    pub prep_latency: HistogramSnapshot,
    pub explain_latency: HistogramSnapshot,
    /// Named-phase breakdown: subgraph/model materialisation.
    pub phase_extraction: HistogramSnapshot,
    /// Named-phase breakdown: flow-index build (cache misses only).
    pub phase_flow_index: HistogramSnapshot,
    /// Named-phase breakdown: mask-optimisation epoch loop.
    pub phase_optimize: HistogramSnapshot,
    /// Named-phase breakdown: score readout / aggregation.
    pub phase_readout: HistogramSnapshot,
    /// Total optimisation epochs run across all completed jobs.
    pub epochs_total: u64,
    /// Warm-start store lookups that produced a usable mask.
    pub store_hits: u64,
    /// Warm-start store lookups that produced nothing usable.
    pub store_misses: u64,
    /// Fused multi-job optimize passes executed.
    pub batches: u64,
    /// Jobs served through a fused batch.
    pub batched_jobs: u64,
    /// Distribution of fused-batch widths.
    pub batch_size: SizeHistogramSnapshot,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]` (0 when the cache was never probed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Folds `other` into `self`: counters and queue depth sum, histograms
    /// merge bucket-wise. This is the fleet-rollup primitive — a gateway
    /// aggregates the snapshots of every backend it fronts into one
    /// fleet-level view (total cache hit rate, fleet latency distribution)
    /// without losing per-bucket resolution.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.jobs_submitted = self.jobs_submitted.saturating_add(other.jobs_submitted);
        self.jobs_started = self.jobs_started.saturating_add(other.jobs_started);
        self.jobs_completed = self.jobs_completed.saturating_add(other.jobs_completed);
        self.jobs_degraded = self.jobs_degraded.saturating_add(other.jobs_degraded);
        self.jobs_failed = self.jobs_failed.saturating_add(other.jobs_failed);
        self.jobs_rejected = self.jobs_rejected.saturating_add(other.jobs_rejected);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.epochs_total = self.epochs_total.saturating_add(other.epochs_total);
        self.store_hits = self.store_hits.saturating_add(other.store_hits);
        self.store_misses = self.store_misses.saturating_add(other.store_misses);
        self.batches = self.batches.saturating_add(other.batches);
        self.batched_jobs = self.batched_jobs.saturating_add(other.batched_jobs);
        self.queue_wait.merge(&other.queue_wait);
        self.prep_latency.merge(&other.prep_latency);
        self.explain_latency.merge(&other.explain_latency);
        self.phase_extraction.merge(&other.phase_extraction);
        self.phase_flow_index.merge(&other.phase_flow_index);
        self.phase_optimize.merge(&other.phase_optimize);
        self.phase_readout.merge(&other.phase_readout);
        self.batch_size.merge(&other.batch_size);
    }

    /// Renders the snapshot as an aligned human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("runtime metrics\n");
        out.push_str(&format!(
            "  jobs      submitted={} started={} completed={} degraded={} failed={} rejected={}\n",
            self.jobs_submitted,
            self.jobs_started,
            self.jobs_completed,
            self.jobs_degraded,
            self.jobs_failed,
            self.jobs_rejected,
        ));
        out.push_str(&format!(
            "  queue     depth={} wait mean={}us max={}us\n",
            self.queue_depth,
            self.queue_wait.mean_us(),
            self.queue_wait.max_us,
        ));
        out.push_str(&format!(
            "  cache     hits={} misses={} hit_rate={:.1}%\n",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
        ));
        out.push_str(&format!("  epochs    total={}\n", self.epochs_total));
        out.push_str(&format!(
            "  store     hits={} misses={}\n",
            self.store_hits, self.store_misses,
        ));
        out.push_str(&format!(
            "  batch     batches={} jobs={} mean_size={}.{:03} max_size={}\n",
            self.batches,
            self.batched_jobs,
            self.batch_size.mean_milli() / 1000,
            self.batch_size.mean_milli() % 1000,
            self.batch_size.max,
        ));
        for (name, h) in [
            ("prep", &self.prep_latency),
            ("explain", &self.explain_latency),
            ("extract", &self.phase_extraction),
            ("flowindex", &self.phase_flow_index),
            ("optimize", &self.phase_optimize),
            ("readout", &self.phase_readout),
        ] {
            out.push_str(&format!(
                "  {name:<9} n={} mean={}us p50={}us p90={}us p99={}us max={}us buckets",
                h.count,
                h.mean_us(),
                h.p50_us(),
                h.p90_us(),
                h.p99_us(),
                h.max_us,
            ));
            for (i, b) in h.buckets.iter().enumerate() {
                let label = match LATENCY_BUCKETS_US.get(i) {
                    Some(&us) if us < 1_000 => format!("<={us}us"),
                    Some(&us) if us < 1_000_000 => format!("<={}ms", us / 1_000),
                    Some(&us) => format!("<={}s", us / 1_000_000),
                    None => "inf".to_owned(),
                };
                out.push_str(&format!(" {label}:{b}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50)); // bucket 0 (<=100us)
        h.observe(Duration::from_micros(500)); // bucket 1 (<=1ms)
        h.observe(Duration::from_secs(20)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(s.max_us, 20_000_000);
        assert_eq!(s.mean_us(), (50 + 500 + 20_000_000) / 3);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        // 100 observations at ~500us: all land in bucket 1, (100, 1000]us.
        for _ in 0..100 {
            h.observe(Duration::from_micros(500));
        }
        let s = h.snapshot();
        // Linear interpolation inside (100, 1000]: p50 = 100 + 0.5*900.
        assert_eq!(s.p50_us(), 550);
        assert_eq!(s.p90_us(), 910);
        assert_eq!(s.p99_us(), 991);
        // Quantiles are monotone and bounded by the bucket's upper edge.
        assert!(s.quantile_us(1.0) <= 1000);
        assert_eq!(HistogramSnapshot::default().p99_us(), 0);
    }

    #[test]
    fn overflow_bucket_quantile_capped_at_max() {
        let h = Histogram::default();
        h.observe(Duration::from_secs(20)); // overflow bucket
        h.observe(Duration::from_secs(30)); // overflow bucket
        let s = h.snapshot();
        // The unbounded bucket's upper edge is the observed max, so the
        // estimate can never exceed a latency that actually happened.
        assert!(s.p99_us() <= 30_000_000);
        assert!(s.p50_us() >= 10_000_000);
    }

    #[test]
    fn snapshot_and_report() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(4, Ordering::Relaxed);
        m.jobs_completed.fetch_add(3, Ordering::Relaxed);
        m.jobs_degraded.fetch_add(1, Ordering::Relaxed);
        m.explain_latency.observe(Duration::from_millis(5));
        let s = m.snapshot(3, 1);
        assert_eq!(s.jobs_submitted, 4);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        let report = s.report();
        assert!(report.contains("submitted=4"));
        assert!(report.contains("hit_rate=75.0%"));
        assert!(report.contains("explain"));
    }

    #[test]
    fn metrics_collector_routes_span_ends_to_phase_histograms() {
        use revelio_trace::{TraceHandle, TraceId};
        let metrics = Arc::new(Metrics::default());
        let bridge = Arc::new(MetricsCollector::new(Arc::clone(&metrics)));
        let tr = TraceHandle::new(TraceId(7), bridge);
        assert!(tr.enabled());
        assert!(!tr.verbose()); // never forces per-epoch tensor reads
        drop(tr.span(Phase::Optimize));
        tr.event(EventKind::CacheProbe { hit: true }); // ignored by bridge
        let s = metrics.snapshot(0, 0);
        assert_eq!(s.phase_optimize.count, 1);
        assert_eq!(s.phase_extraction.count, 0);
    }

    #[test]
    fn size_histogram_buckets_and_mean() {
        let h = SizeHistogram::default();
        h.observe(1); // bucket 0 (<=1)
        h.observe(3); // bucket 2 (<=4)
        h.observe(40); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[NUM_SIZE_BUCKETS - 1], 1);
        assert_eq!(s.max, 40);
        assert_eq!(s.mean_milli(), (1 + 3 + 40) * 1000 / 3);
        assert_eq!(SizeHistogramSnapshot::default().mean_milli(), 0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Metrics::default().snapshot(0, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.queue_wait.mean_us(), 0);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_buckets() {
        let a = Metrics::default();
        a.jobs_completed.fetch_add(3, Ordering::Relaxed);
        a.explain_latency.observe(Duration::from_micros(50));
        a.batch_size.observe(2);
        let b = Metrics::default();
        b.jobs_completed.fetch_add(5, Ordering::Relaxed);
        b.explain_latency.observe(Duration::from_secs(20));
        b.batch_size.observe(7);

        let mut merged = a.snapshot(4, 1);
        merged.merge(&b.snapshot(1, 4));
        assert_eq!(merged.jobs_completed, 8);
        assert_eq!(merged.cache_hits, 5);
        assert_eq!(merged.cache_misses, 5);
        assert!((merged.cache_hit_rate() - 0.5).abs() < 1e-9);
        // Histograms merge bucket-wise: one fast + one slow observation.
        assert_eq!(merged.explain_latency.count, 2);
        assert_eq!(merged.explain_latency.buckets[0], 1);
        assert_eq!(merged.explain_latency.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(merged.explain_latency.max_us, 20_000_000);
        assert_eq!(merged.batch_size.count, 2);
        assert_eq!(merged.batch_size.max, 7);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m = Metrics::default();
        m.jobs_submitted.fetch_add(2, Ordering::Relaxed);
        m.phase_optimize.observe(Duration::from_millis(3));
        let base = m.snapshot(1, 2);
        let mut merged = base;
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged, base);
        let mut from_empty = MetricsSnapshot::default();
        from_empty.merge(&base);
        assert_eq!(from_empty, base);
    }
}
