//! Job, model-spec, and result types for the serving runtime.
//!
//! The tensor engine is single-threaded (`Rc`-based autograd tapes), so a
//! `Gnn` cannot cross threads. Jobs therefore carry only plain data — the
//! (sub)graph, the target, and a *factory* that builds the explainer on the
//! worker — and models are registered once as a [`ModelSpec`] (config +
//! weights) that each worker materialises locally.

use std::time::Duration;

use revelio_check::sync::mpsc;

use revelio_core::{Degradation, Explainer, Explanation, RevelioConfig};
use revelio_gnn::{Gnn, GnnConfig};
use revelio_graph::{Graph, Target};
use revelio_trace::Trace;

/// Builds the job's explainer *on the worker thread*, from the job's
/// deterministic seed. Taking the seed through the factory (rather than
/// baking it in at submission) is what makes results independent of which
/// worker runs the job.
pub type ExplainerFactory = Box<dyn Fn(u64) -> Box<dyn Explainer> + Send>;

/// A registered model: everything needed to rebuild the `Gnn` on any
/// thread.
pub struct ModelSpec {
    config: GnnConfig,
    state: Vec<Vec<f32>>,
    /// Content fingerprint over config and weights, computed once at
    /// registration; the store's staleness guard for warm-start masks.
    fingerprint: u64,
}

impl ModelSpec {
    /// Captures `model`'s architecture and weights.
    pub fn of(model: &Gnn) -> ModelSpec {
        ModelSpec::from_parts(model.config().clone(), model.state_dict())
    }

    /// Rebuilds a spec from persisted parts (store recovery).
    pub fn from_parts(config: GnnConfig, state: Vec<Vec<f32>>) -> ModelSpec {
        let fingerprint = revelio_store::fingerprint_model(&config, &state);
        ModelSpec {
            config,
            state,
            fingerprint,
        }
    }

    /// Rebuilds the model (fresh tensors, identical weights).
    pub fn materialize(&self) -> Gnn {
        let model = Gnn::new(self.config.clone());
        model.load_state(&self.state);
        model
    }

    /// The captured architecture.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// The captured weights, in `Gnn::state_dict` order.
    pub fn state(&self) -> &[Vec<f32>] {
        &self.state
    }

    /// Content fingerprint over config and weights.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Handle returned by [`Runtime::register_model`]; cheap to copy into every
/// job that targets the model.
///
/// [`Runtime::register_model`]: crate::Runtime::register_model
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(pub(crate) usize);

/// One explanation request.
///
/// The graph should already be the computation subgraph the caller wants
/// explained (for node classification, the `L`-hop subgraph with `target`
/// remapped to its local id — see [`ArtifactCache::subgraph`]).
///
/// [`ArtifactCache::subgraph`]: crate::ArtifactCache::subgraph
pub struct ExplainJob {
    /// The instance graph (moved into the job; plain data, crosses threads).
    pub graph: Graph,
    /// What to explain.
    pub target: Target,
    /// Caller-assigned content id for `graph`, used as the artifact-cache
    /// key. Jobs with the same `graph_id` must carry identical graphs.
    pub graph_id: u64,
    /// Builds the explainer on the worker from the job's derived seed.
    pub make_explainer: ExplainerFactory,
    /// Pre-build (or fetch from cache) the flow index and hand it to the
    /// explainer. Set for flow-based methods (REVELIO, GNN-LRP, FlowX);
    /// edge-mask methods skip the enumeration entirely.
    pub needs_flows: bool,
    /// Flow cap for `needs_flows` preparation; oversized instances are
    /// shrunk to this cap (reported via [`Degradation::flows_dropped`])
    /// rather than rejected.
    pub max_flows: usize,
    /// When the instance exceeds `max_flows`: `true` degrades the answer to
    /// a deterministic flow prefix, `false` fails the job with
    /// [`JobError::TooManyFlows`] instead (for callers that would rather
    /// retry against a bigger budget than act on a partial answer).
    pub shrink_on_overflow: bool,
    /// Per-job latency budget, measured from *submission* (queue wait
    /// counts). `None` falls back to the runtime's default deadline.
    pub deadline: Option<Duration>,
    /// Capture a structured execution trace: the worker attaches a
    /// ring-buffer collector, stores the finished [`Trace`] in
    /// [`JobOutput::trace`], and retains it for later retrieval via
    /// [`Runtime::trace`]. Untraced jobs still feed the always-on phase
    /// histograms.
    ///
    /// [`Runtime::trace`]: crate::Runtime::trace
    pub trace: bool,
    /// Overrides the id the captured trace is journaled and retained
    /// under. Distributed callers set this to the low half of a global
    /// 128-bit trace id so the fragment can be fetched fleet-wide by that
    /// id instead of the shard-local `job_id`; `None` keeps the job-id
    /// keying. Ignored for untraced jobs.
    pub trace_key: Option<u64>,
    /// Ask the runtime's persistent store (when one is attached) for the
    /// newest converged mask matching this job's `(model, graph_id,
    /// target, layers)` key and seed the optimisation from it. A stale or
    /// missing mask silently falls back to the cold path; lookups are
    /// counted in [`MetricsSnapshot::store_hits`] / `store_misses`.
    ///
    /// [`MetricsSnapshot::store_hits`]: crate::MetricsSnapshot
    pub warm_start: bool,
    /// Declares this job as a REVELIO mask optimisation eligible for the
    /// runtime's fused multi-job batching (when [`RuntimeConfig::max_batch`]
    /// `> 1`). Queued jobs sharing the same model handle and an equal
    /// config are drained into one [`BatchedOptimizer`] pass; everything
    /// else — including this job when no compatible peer is queued — runs
    /// through `make_explainer` exactly as before. Batched results match
    /// the serial path within [`BATCH_TOLERANCE`].
    ///
    /// [`RuntimeConfig::max_batch`]: crate::RuntimeConfig
    /// [`BatchedOptimizer`]: revelio_core::BatchedOptimizer
    /// [`BATCH_TOLERANCE`]: revelio_core::BATCH_TOLERANCE
    pub batch_spec: Option<RevelioConfig>,
}

impl ExplainJob {
    /// A job with flow preparation enabled and the runtime's default
    /// deadline.
    pub fn flow_based(
        graph: Graph,
        target: Target,
        graph_id: u64,
        max_flows: usize,
        make_explainer: ExplainerFactory,
    ) -> ExplainJob {
        ExplainJob {
            graph,
            target,
            graph_id,
            make_explainer,
            needs_flows: true,
            max_flows,
            shrink_on_overflow: true,
            deadline: None,
            trace: false,
            trace_key: None,
            warm_start: false,
            batch_spec: None,
        }
    }

    /// A job for an edge-mask method (no flow enumeration).
    pub fn edge_based(
        graph: Graph,
        target: Target,
        graph_id: u64,
        make_explainer: ExplainerFactory,
    ) -> ExplainJob {
        ExplainJob {
            graph,
            target,
            graph_id,
            make_explainer,
            needs_flows: false,
            max_flows: usize::MAX,
            shrink_on_overflow: true,
            deadline: None,
            trace: false,
            trace_key: None,
            warm_start: false,
            batch_spec: None,
        }
    }

    /// Sets a per-job deadline.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> ExplainJob {
        self.deadline = Some(budget);
        self
    }

    /// Enables structured trace capture for this job.
    #[must_use]
    pub fn with_trace(mut self) -> ExplainJob {
        self.trace = true;
        self
    }

    /// Enables trace capture journaled under `key` instead of the job id
    /// (the distributed-tracing path; see [`ExplainJob::trace_key`]).
    #[must_use]
    pub fn with_trace_key(mut self, key: u64) -> ExplainJob {
        self.trace = true;
        self.trace_key = Some(key);
        self
    }

    /// Sets whether the job asks for a store-seeded warm start.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> ExplainJob {
        self.warm_start = warm;
        self
    }

    /// Marks the job as batchable with the given REVELIO config (the
    /// config's `seed` is ignored — each job keeps its derived seed). The
    /// factory must build a `Revelio` with the *same* config for the
    /// serial fallback to stay equivalent.
    #[must_use]
    pub fn with_batch_spec(mut self, cfg: RevelioConfig) -> ExplainJob {
        self.batch_spec = Some(cfg);
        self
    }
}

/// Per-stage wall-clock timing of a completed job.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTiming {
    /// Submission → picked up by a worker.
    pub queue_wait: Duration,
    /// Model materialisation + instance forward pass + flow preparation.
    pub prep: Duration,
    /// The explainer call itself.
    pub explain: Duration,
}

/// A successfully served explanation.
pub struct JobOutput {
    /// Submission-order id (also the determinism seed input).
    pub job_id: u64,
    pub explanation: Explanation,
    /// What, if anything, was cut to meet the budget.
    pub degradation: Degradation,
    pub timing: JobTiming,
    /// The captured execution trace, when the job asked for one
    /// ([`ExplainJob::trace`]); `None` for untraced jobs.
    pub trace: Option<Trace>,
}

impl JobOutput {
    /// Whether the answer was degraded to meet its budget.
    pub fn degraded(&self) -> bool {
        self.degradation.is_degraded()
    }
}

/// Why a job produced no explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The explainer panicked; the payload is the panic message. The worker
    /// survives and keeps serving.
    Panicked(String),
    /// The runtime was shut down before the job ran.
    Cancelled,
    /// The job referenced a model handle that was never registered.
    UnknownModel,
    /// The instance exceeded the job's flow cap and the job opted out of
    /// shrinking (`shrink_on_overflow == false`); carries how many flows
    /// were over budget.
    TooManyFlows {
        /// Flows beyond the cap.
        dropped: u64,
    },
    /// The worker disappeared without reporting a result (a runtime bug;
    /// surfaced instead of hanging the caller).
    Lost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "explainer panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled at shutdown"),
            JobError::UnknownModel => write!(f, "unknown model handle"),
            JobError::TooManyFlows { dropped } => write!(
                f,
                "instance exceeds the flow cap by {dropped} flows and shrinking was disabled"
            ),
            JobError::Lost => write!(f, "worker dropped the job without a result"),
        }
    }
}

impl std::error::Error for JobError {}

/// The outcome of one job.
pub type JobResult = Result<JobOutput, JobError>;

/// A claim on one submitted job's result.
///
/// Semantics:
///
/// * A ticket **always resolves** — completion, [`JobError::Panicked`],
///   [`JobError::Cancelled`] after [`Runtime::cancel_all`], or
///   [`JobError::Lost`] if the runtime disappears — so `wait` cannot hang
///   on a healthy runtime.
/// * Dropping a ticket does **not** cancel the job; the worker still runs
///   it (and its side effects, like cache warming, still happen). The
///   result is discarded on arrival.
/// * Tickets are single-use claims: [`Ticket::wait`] consumes the ticket,
///   and [`Ticket::try_wait`] hands it back until the result is in.
/// * Waiting does not require the [`Runtime`] to stay alive: dropping the
///   runtime drains the queue first, so queued tickets resolve before the
///   last worker exits.
///
/// [`Runtime`]: crate::Runtime
/// [`Runtime::cancel_all`]: crate::Runtime::cancel_all
pub struct Ticket {
    pub(crate) job_id: u64,
    pub(crate) rx: mpsc::Receiver<JobResult>,
}

impl Ticket {
    /// The job's submission-order id.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Blocks until the job finishes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(JobError::Lost))
    }

    /// Returns the result if the job already finished, `Err(self)`
    /// otherwise (so the caller can keep waiting).
    pub fn try_wait(self) -> Result<JobResult, Ticket> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(JobError::Lost)),
        }
    }
}
