//! Sharded LRU cache for pure explanation artifacts.
//!
//! Flow enumeration and `L`-hop subgraph extraction are pure functions of
//! `(graph, target, L)`; when several explainers (or several requests) hit
//! the same instance, the runtime computes each artifact once and shares it
//! behind an `Arc`. The cache is sharded — each shard owns an independent
//! LRU under its own mutex — so concurrent workers rarely contend on the
//! same lock.

use revelio_check::sync::atomic::{AtomicU64, Ordering};
use revelio_check::sync::{Arc, Mutex};
use revelio_graph::{khop_subgraph, FlowIndex, Graph, KhopSubgraph, MpGraph, Target};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash, RandomState};

/// One LRU shard: a key→value map plus a recency index. `tick` is a
/// shard-local logical clock; the `order` map's smallest tick is the
/// least-recently-used entry.
struct Shard<K, V> {
    map: HashMap<K, (u64, V)>,
    order: BTreeMap<u64, K>,
    tick: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.tick;
        self.tick += 1;
        let (old_tick, value) = self.map.get_mut(key)?;
        self.order.remove(&std::mem::replace(old_tick, tick));
        self.order.insert(tick, key.clone());
        Some(value.clone())
    }

    fn insert(&mut self, key: K, value: V, capacity: usize) {
        let tick = self.tick;
        self.tick += 1;
        if let Some((old_tick, _)) = self.map.insert(key.clone(), (tick, value)) {
            self.order.remove(&old_tick);
        }
        self.order.insert(tick, key);
        while self.map.len() > capacity {
            if let Some((_, victim)) = self.order.pop_first() {
                self.map.remove(&victim);
            }
        }
    }
}

/// A sharded LRU cache. Values are cloned out, so `V` is typically an
/// `Arc<T>`. Capacity is enforced per shard; total capacity is
/// `shards * capacity_per_shard`.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedLru<K, V> {
    /// `shards` is rounded up to 1; `capacity` is the *total* entry budget,
    /// split evenly across shards (at least one entry per shard).
    pub fn new(shards: usize, capacity: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let capacity_per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard,
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key lives in (stable for the lifetime of the cache).
    pub fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        &self.shards[self.shard_of(key)]
    }

    pub fn get(&self, key: &K) -> Option<V> {
        let got = match self.shard(key).lock() {
            Ok(mut s) => s.get(key),
            Err(poisoned) => poisoned.into_inner().get(key),
        };
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    pub fn insert(&self, key: K, value: V) {
        match self.shard(&key).lock() {
            Ok(mut s) => s.insert(key, value, self.capacity_per_shard),
            Err(poisoned) => poisoned
                .into_inner()
                .insert(key, value, self.capacity_per_shard),
        }
    }

    /// Returns the cached value, or computes, caches, and returns it. The
    /// shard lock is *not* held during `compute` — two racing workers may
    /// both compute a missing value (the artifacts are pure, so both results
    /// are identical and the second insert is harmless); holding the lock
    /// would serialise every cache user behind one slow enumeration.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        self.get_or_insert_with_flag(key, compute).0
    }

    /// [`ShardedLru::get_or_insert_with`], additionally reporting whether
    /// the value was already resident (`true` = hit). Callers that annotate
    /// traces or metrics use this; plain callers keep the simpler shape.
    pub fn get_or_insert_with_flag(&self, key: &K, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.insert(key.clone(), v.clone());
        (v, false)
    }

    /// Entries currently resident, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(s) => s.map.len(),
                Err(poisoned) => poisoned.into_inner().map.len(),
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Keys in least-recently-used → most-recently-used order, per shard.
    /// Test/introspection helper: the outer index is the shard id.
    pub fn lru_order_by_shard(&self) -> Vec<Vec<K>> {
        self.shards
            .iter()
            .map(|s| {
                let shard = match s.lock() {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                };
                shard.order.values().cloned().collect()
            })
            .collect()
    }
}

/// Cache key for an `L`-hop computation subgraph: `(graph id, target node,
/// hops)`.
pub type SubgraphKey = (u64, usize, usize);

/// Cache key for an enumerated flow index: `(graph id, target, layers,
/// flow cap)`. The cap is part of the key because a capped build is a
/// *prefix* of the full enumeration — different caps give different
/// artifacts.
pub type FlowKey = (u64, Target, usize, usize);

/// A cached (possibly capped) flow enumeration: the index plus how many
/// flows the cap dropped (`0` when complete).
#[derive(Clone)]
pub struct CachedFlows {
    pub index: Arc<FlowIndex>,
    pub dropped: u64,
}

/// The runtime's artifact cache: `L`-hop subgraphs and flow indexes, keyed
/// by caller-assigned graph ids. Ids must identify graph *content* — reusing
/// an id for a different graph serves stale artifacts.
pub struct ArtifactCache {
    subgraphs: ShardedLru<SubgraphKey, Arc<KhopSubgraph>>,
    flows: ShardedLru<FlowKey, CachedFlows>,
}

impl ArtifactCache {
    pub fn new(shards: usize, capacity: usize) -> ArtifactCache {
        ArtifactCache {
            subgraphs: ShardedLru::new(shards, capacity),
            flows: ShardedLru::new(shards, capacity),
        }
    }

    /// The `hops`-hop computation subgraph around `target` in `graph`,
    /// extracted once per `(graph_id, target, hops)`.
    pub fn subgraph(
        &self,
        graph_id: u64,
        graph: &Graph,
        target: usize,
        hops: usize,
    ) -> Arc<KhopSubgraph> {
        self.subgraphs
            .get_or_insert_with(&(graph_id, target, hops), || {
                Arc::new(khop_subgraph(graph, target, hops))
            })
    }

    /// Inserts a pre-built flow enumeration under an explicit key, used by
    /// store recovery to pre-warm the cache with indexes rebuilt from
    /// persisted flow tables. The key carries the same caveat as
    /// [`ArtifactCache::flow_index`]: it must describe the artifact's
    /// actual provenance, or later probes serve a wrong index.
    pub fn insert_flow_index(&self, key: FlowKey, flows: CachedFlows) {
        self.flows.insert(key, flows);
    }

    /// The flow enumeration for `(graph_id, target, layers)` under
    /// `max_flows`, built once and shared. Oversized instances are capped
    /// to a deterministic prefix; `CachedFlows::dropped` reports the cut.
    pub fn flow_index(
        &self,
        graph_id: u64,
        mp: &MpGraph,
        layers: usize,
        target: Target,
        max_flows: usize,
    ) -> CachedFlows {
        self.flow_index_probed(graph_id, mp, layers, target, max_flows)
            .0
    }

    /// [`ArtifactCache::flow_index`], additionally reporting whether the
    /// index was already resident (`true` = hit) so workers can annotate
    /// the request trace with the probe outcome.
    pub fn flow_index_probed(
        &self,
        graph_id: u64,
        mp: &MpGraph,
        layers: usize,
        target: Target,
        max_flows: usize,
    ) -> (CachedFlows, bool) {
        self.flows
            .get_or_insert_with_flag(&(graph_id, target, layers, max_flows), || {
                let capped = FlowIndex::build_capped(mp, layers, target, max_flows);
                CachedFlows {
                    index: Arc::new(capped.index),
                    dropped: capped.dropped,
                }
            })
    }

    /// `(hits, misses)` across both artifact kinds.
    pub fn stats(&self) -> (u64, u64) {
        let (sh, sm) = self.subgraphs.stats();
        let (fh, fm) = self.flows.stats();
        (sh + fh, sm + fm)
    }

    /// Resident entries across both artifact kinds.
    pub fn len(&self) -> usize {
        self.subgraphs.len() + self.flows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_graph::Graph;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(1, 2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1; 2 is now LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn get_or_insert_computes_once() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 16);
        let mut calls = 0;
        let v = cache.get_or_insert_with(&7, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        let v = cache.get_or_insert_with(&7, || {
            calls += 1;
            0
        });
        assert_eq!(v, 42);
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (1, 1)); // one miss to fill, one hit after
    }

    #[test]
    fn artifact_cache_shares_flow_index() {
        let mut b = Graph::builder(3, 1);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        let g = b.build();
        let mp = MpGraph::new(&g);
        let cache = ArtifactCache::new(2, 8);
        let a = cache.flow_index(9, &mp, 2, Target::Node(1), 10_000);
        let b2 = cache.flow_index(9, &mp, 2, Target::Node(1), 10_000);
        assert!(Arc::ptr_eq(&a.index, &b2.index));
        assert_eq!(a.dropped, 0);
        // Different cap is a different artifact.
        let c = cache.flow_index(9, &mp, 2, Target::Node(1), 1);
        assert!(!Arc::ptr_eq(&a.index, &c.index));
        assert!(c.dropped > 0);
    }

    #[test]
    fn artifact_cache_shares_subgraph() {
        let mut b = Graph::builder(4, 1);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(2, 3);
        let g = b.build();
        let cache = ArtifactCache::new(2, 8);
        let s1 = cache.subgraph(1, &g, 2, 2);
        let s2 = cache.subgraph(1, &g, 2, 2);
        assert!(Arc::ptr_eq(&s1, &s2));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }
}
