//! Behavioural tests of the training stack: every architecture must reduce
//! its loss and beat chance on separable tasks, and masking must interact
//! with predictions the way Eq. 6 implies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use revelio_gnn::{
    evaluate_node_accuracy, train_node_classifier, Gnn, GnnConfig, GnnKind, Task, TrainConfig,
};
use revelio_graph::{Graph, MpGraph, Target};
use revelio_tensor::Tensor;

/// A random homophilous two-class graph with informative features.
fn separable_graph(seed: u64) -> Graph {
    let n = 40;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = Graph::builder(n, 4);
    let labels: Vec<usize> = (0..n).map(|v| v % 2).collect();
    // Mostly intra-class edges.
    let mut added = std::collections::HashSet::new();
    let mut count = 0;
    while count < 60 {
        let u = rng.gen_range(0..n);
        let same_class = rng.gen_bool(0.85);
        let v = loop {
            let c = rng.gen_range(0..n);
            if c != u && (labels[c] == labels[u]) == same_class {
                break c;
            }
        };
        if added.insert((u.min(v), u.max(v))) {
            b.undirected_edge(u, v);
            count += 1;
        }
    }
    for (v, &label) in labels.iter().enumerate() {
        let c = label as f32;
        b.node_features(
            v,
            &[
                1.0 - c + rng.gen_range(-0.2..0.2),
                c + rng.gen_range(-0.2..0.2),
                rng.gen_range(0.0..1.0),
                1.0,
            ],
        );
    }
    b.node_labels(labels);
    b.build()
}

#[test]
fn all_architectures_learn_separable_node_task() {
    let g = separable_graph(1);
    let idx: Vec<usize> = (0..g.num_nodes()).collect();
    for kind in [GnnKind::Gcn, GnnKind::Gin, GnnKind::Gat] {
        let model = Gnn::new(GnnConfig::standard(kind, Task::NodeClassification, 4, 2, 1));
        let final_loss = train_node_classifier(
            &model,
            &g,
            &idx,
            &TrainConfig {
                epochs: 100,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        assert!(final_loss < 0.3, "{}: final loss {final_loss}", kind.name());
        let acc = evaluate_node_accuracy(&model, &g, &idx);
        assert!(acc > 0.9, "{}: accuracy {acc}", kind.name());
    }
}

#[test]
fn training_reduces_loss_monotonically_in_aggregate() {
    let g = separable_graph(2);
    let idx: Vec<usize> = (0..g.num_nodes()).collect();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        4,
        2,
        6,
    ));
    let early = train_node_classifier(
        &model,
        &g,
        &idx,
        &TrainConfig {
            epochs: 10,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let late = train_node_classifier(
        &model,
        &g,
        &idx,
        &TrainConfig {
            epochs: 80,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    assert!(late < early, "loss should keep dropping: {early} -> {late}");
}

#[test]
fn interpolating_masks_interpolates_predictions() {
    // A mask of all-ones equals no mask; shrinking all mask values toward
    // zero must change the logits continuously (Eq. 6 is multiplicative).
    let g = separable_graph(3);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        4,
        2,
        7,
    ));
    let mp = MpGraph::new(&g);
    let x = Gnn::features_tensor(&g);
    let base = model.node_logits(&mp, &x, None).to_vec();

    let logits_at = |v: f32| {
        let masks: Vec<Tensor> = (0..3)
            .map(|_| Tensor::full(v, mp.layer_edge_count(), 1))
            .collect();
        model.node_logits(&mp, &x, Some(&masks)).to_vec()
    };

    let ones = logits_at(1.0);
    for (a, b) in base.iter().zip(&ones) {
        assert!((a - b).abs() < 1e-5, "ones mask must be identity");
    }

    // Distance from the unmasked logits grows as the mask shrinks.
    let dist = |other: &[f32]| -> f32 {
        base.iter()
            .zip(other)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt()
    };
    let d_09 = dist(&logits_at(0.9));
    let d_05 = dist(&logits_at(0.5));
    let d_01 = dist(&logits_at(0.1));
    assert!(d_09 < d_05 && d_05 < d_01, "{d_09} {d_05} {d_01}");
}

#[test]
fn gat_masks_respect_attention_normalisation() {
    // GAT attention normalises per destination, so a uniform mask scales
    // messages uniformly: logits at mask=0.5 differ from unmasked ones.
    let g = separable_graph(4);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gat,
        Task::NodeClassification,
        4,
        2,
        8,
    ));
    let mp = MpGraph::new(&g);
    let x = Gnn::features_tensor(&g);
    let base = model.node_logits(&mp, &x, None).to_vec();
    let masks: Vec<Tensor> = (0..3)
        .map(|_| Tensor::full(0.5, mp.layer_edge_count(), 1))
        .collect();
    let masked = model.node_logits(&mp, &x, Some(&masks)).to_vec();
    assert_ne!(base, masked);
    assert!(masked.iter().all(|v| v.is_finite()));
}

#[test]
fn target_logits_match_node_logits_row() {
    let g = separable_graph(5);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gin,
        Task::NodeClassification,
        4,
        2,
        9,
    ));
    let mp = MpGraph::new(&g);
    let x = Gnn::features_tensor(&g);
    let full = model.node_logits(&mp, &x, None);
    let row = model.target_logits(&mp, &x, None, Target::Node(7)).to_vec();
    assert_eq!(row, full.to_vec()[7 * 2..7 * 2 + 2].to_vec());
}
