//! End-to-end finite-difference gradient checks for every GNN layer kind.
//!
//! For each of GCN / GIN / GAT, a small two-layer model runs a full
//! forward pass (node logits → log-softmax → NLL) on a fixed graph, and the
//! reverse-mode gradients of **all** model parameters and of a per-layer
//! edge mask are compared against central differences. This exercises the
//! complete layer stack — linear transforms, message passing
//! (`gather_rows` / `scatter_add_rows` / GCN normalisation), GAT attention
//! (`segment_softmax`), mask gating, and the inter-layer activation.

#![allow(clippy::unwrap_used)]

use revelio_gnn::{Gnn, GnnConfig, GnnKind, Task};
use revelio_graph::{Graph, MpGraph};
use revelio_tensor::{grad_check, Tensor};

/// A fixed 6-node graph with two classes' worth of structure and smooth
/// deterministic features (no kinks, no randomness).
fn fixture() -> Graph {
    let feat_dim = 4;
    let mut b = Graph::builder(6, feat_dim);
    b.edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .edge(3, 4)
        .edge(4, 5)
        .edge(5, 0)
        .edge(1, 4);
    for v in 0..6 {
        let feats: Vec<f32> = (0..feat_dim)
            .map(|j| 0.4 * ((v * feat_dim + j) as f32 * 0.7).sin())
            .collect();
        b.node_features(v, &feats);
    }
    b.build()
}

/// Strictly interior mask values (away from the sigmoid-like saturation
/// ends) so the loss stays smooth in every perturbed direction.
fn layer_masks(ne: usize, layers: usize) -> Vec<Tensor> {
    (0..layers)
        .map(|l| {
            let vals: Vec<f32> = (0..ne)
                .map(|e| 0.35 + 0.5 * ((l * ne + e) as f32 * 0.37).sin().abs().min(0.6))
                .collect();
            Tensor::from_vec(vals, ne, 1).requires_grad()
        })
        .collect()
}

fn check_kind(kind: GnnKind, seed: u64) {
    let g = fixture();
    let mp = MpGraph::new(&g);
    let x = Gnn::features_tensor(&g);
    let model = Gnn::new(GnnConfig {
        kind,
        task: Task::NodeClassification,
        in_dim: g.feat_dim(),
        hidden_dim: 6,
        num_classes: 2,
        num_layers: 2,
        heads: 2,
        seed,
    });
    let masks = layer_masks(mp.layer_edge_count(), model.num_layers());
    let labels = [0usize, 1, 0, 1, 0, 1];

    let mut leaves = model.params();
    leaves.extend(masks.iter().cloned());

    let report = grad_check(
        || {
            model
                .node_logits(&mp, &x, Some(&masks))
                .log_softmax_rows()
                .nll_loss(&labels)
        },
        &leaves,
        // eps 3e-3: wide enough for f32 central differences on an O(1)
        // loss, narrow enough that hidden ReLU preactivations are unlikely
        // to sit within one step of their kink.
        3e-3,
        1e-2,
    )
    .unwrap();
    assert!(
        report.checked > leaves.len(),
        "{kind:?}: expected to perturb every parameter element, checked {}",
        report.checked
    );
}

#[test]
fn gcn_end_to_end_gradients_match_finite_differences() {
    check_kind(GnnKind::Gcn, 0);
}

#[test]
fn gin_end_to_end_gradients_match_finite_differences() {
    // Seed-sensitive: GIN's internal ReLU MLP makes it likely that some
    // hidden preactivation sits within eps of the kink, where central
    // differences and the subgradient legitimately disagree. Seed 2 keeps
    // every preactivation clear of the kink on this fixture.
    check_kind(GnnKind::Gin, 2);
}

#[test]
fn gat_end_to_end_gradients_match_finite_differences() {
    check_kind(GnnKind::Gat, 0);
}
