//! The unit of explanation: one graph, one prediction target.

use revelio_graph::{Graph, MpGraph, Target};
use revelio_tensor::Tensor;

use crate::model::Gnn;

/// An explanation instance: the (sub)graph an explainer operates on, the
/// prediction target, and the class to explain.
///
/// For node classification this is typically the `L`-hop computation
/// subgraph around the target (see [`revelio_graph::khop_subgraph`]); for
/// graph classification it is the whole input graph.
pub struct Instance {
    /// The graph being explained.
    pub graph: Graph,
    /// Cached message-passing view of `graph`.
    pub mp: MpGraph,
    /// Cached feature tensor of `graph`.
    pub x: Tensor,
    /// What is being predicted.
    pub target: Target,
    /// The class under explanation (usually the model's prediction).
    pub class: usize,
    /// The model's class probabilities on the unperturbed instance.
    pub orig_probs: Vec<f32>,
}

impl Instance {
    /// Builds an instance explaining the model's own prediction on
    /// `(graph, target)`.
    pub fn for_prediction(model: &Gnn, graph: Graph, target: Target) -> Instance {
        let probs = model.predict_probs(&graph, target);
        let class = crate::model::argmax(&probs);
        Self::for_class(graph, target, class, probs)
    }

    /// Builds an instance explaining a specific class, with precomputed
    /// original probabilities.
    pub fn for_class(graph: Graph, target: Target, class: usize, orig_probs: Vec<f32>) -> Instance {
        let mp = MpGraph::new(&graph);
        let x = Gnn::features_tensor(&graph);
        Instance {
            graph,
            mp,
            x,
            target,
            class,
            orig_probs,
        }
    }

    /// The model's probability of the explained class on the original graph.
    pub fn orig_prob(&self) -> f32 {
        self.orig_probs[self.class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GnnConfig, GnnKind, Task};

    #[test]
    fn for_prediction_picks_argmax_class() {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        b.node_features(0, &[1.0, 0.0]);
        let g = b.build();
        let m = Gnn::new(GnnConfig::standard(
            GnnKind::Gcn,
            Task::NodeClassification,
            2,
            3,
            7,
        ));
        let inst = Instance::for_prediction(&m, g, Target::Node(1));
        let best = inst
            .orig_probs
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(inst.orig_prob(), best);
        assert_eq!(inst.mp.num_nodes(), 3);
    }
}
