//! The model zoo: a disk cache of trained model weights so harness binaries
//! train each (dataset, architecture) pair only once.

use std::fs;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};
use crate::model::{Gnn, GnnConfig, GnnKind, Task};

/// Serialises a model into the zoo's JSON cache format:
/// `{"config":{...},"params":[[...],...]}` with shortest-round-trip floats.
fn to_json(config: &GnnConfig, params: &[Vec<f32>]) -> String {
    let mut out = String::with_capacity(64 + params.iter().map(Vec::len).sum::<usize>() * 12);
    out.push_str("{\"config\":{");
    out.push_str("\"kind\":");
    json::write_str(&mut out, config.kind.name());
    let task = match config.task {
        Task::NodeClassification => "node",
        Task::GraphClassification => "graph",
    };
    out.push_str(",\"task\":");
    json::write_str(&mut out, task);
    use std::fmt::Write as _;
    let _ = write!(
        out,
        ",\"in_dim\":{},\"hidden_dim\":{},\"num_classes\":{},\"num_layers\":{},\"heads\":{},\"seed\":{}",
        config.in_dim,
        config.hidden_dim,
        config.num_classes,
        config.num_layers,
        config.heads,
        config.seed
    );
    out.push_str("},\"params\":[");
    for (i, buf) in params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &v) in buf.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f32(&mut out, v);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Parses the zoo cache format back; `None` on any malformed input.
fn from_json(text: &str) -> Option<(GnnConfig, Vec<Vec<f32>>)> {
    let doc = json::parse(text)?;
    let cfg = doc.get("config")?;
    let kind = match cfg.get("kind")?.as_str()? {
        "GCN" => GnnKind::Gcn,
        "GIN" => GnnKind::Gin,
        "GAT" => GnnKind::Gat,
        _ => return None,
    };
    let task = match cfg.get("task")?.as_str()? {
        "node" => Task::NodeClassification,
        "graph" => Task::GraphClassification,
        _ => return None,
    };
    let config = GnnConfig {
        kind,
        task,
        in_dim: cfg.get("in_dim")?.as_usize()?,
        hidden_dim: cfg.get("hidden_dim")?.as_usize()?,
        num_classes: cfg.get("num_classes")?.as_usize()?,
        num_layers: cfg.get("num_layers")?.as_usize()?,
        heads: cfg.get("heads")?.as_usize()?,
        seed: cfg.get("seed")?.as_u64()?,
    };
    let params = doc
        .get("params")?
        .as_arr()?
        .iter()
        .map(|buf| {
            buf.as_arr()?
                .iter()
                .map(Json::as_f32)
                .collect::<Option<Vec<f32>>>()
        })
        .collect::<Option<Vec<Vec<f32>>>>()?;
    Some((config, params))
}

/// A directory-backed cache of trained models keyed by string.
pub struct ModelZoo {
    dir: PathBuf,
}

impl ModelZoo {
    /// Opens (creating if needed) a zoo at `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> ModelZoo {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).expect("create model zoo directory");
        ModelZoo { dir }
    }

    /// The default zoo location under `target/`.
    pub fn default_location() -> ModelZoo {
        Self::open("target/model_zoo")
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Whether a model is cached under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.path(key).exists()
    }

    /// Removes a cached model (no-op if absent).
    pub fn evict(&self, key: &str) {
        let _ = fs::remove_file(self.path(key));
    }

    /// Loads the model cached under `key`, if present and well-formed and
    /// its config matches `expected` (so stale caches from changed
    /// hyperparameters retrain instead of silently mismatching).
    pub fn load(&self, key: &str, expected: &GnnConfig) -> Option<Gnn> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        let (config, params) = from_json(&text)?;
        if config != *expected {
            return None;
        }
        let model = Gnn::new(config);
        if model.params().len() != params.len()
            || model
                .params()
                .iter()
                .zip(&params)
                .any(|(p, s)| p.len() != s.len())
        {
            return None;
        }
        model.load_state(&params);
        Some(model)
    }

    /// Saves a model under `key`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn save(&self, key: &str, model: &Gnn) {
        let text = to_json(model.config(), &model.state_dict());
        fs::write(self.path(key), text).expect("write model zoo entry");
    }

    /// Returns the cached model for `key`, or builds a fresh model with
    /// `config`, trains it with `train`, caches and returns it.
    pub fn get_or_train(&self, key: &str, config: GnnConfig, train: impl FnOnce(&Gnn)) -> Gnn {
        if let Some(m) = self.load(key, &config) {
            return m;
        }
        let model = Gnn::new(config);
        train(&model);
        self.save(key, &model);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GnnKind, Task};
    use revelio_graph::{Graph, Target};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("revelio_zoo_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn toy_graph() -> Graph {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        b.build()
    }

    #[test]
    fn save_load_roundtrip() {
        let zoo = ModelZoo::open(tmpdir("roundtrip"));
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 2, 3, 5);
        let m = Gnn::new(cfg.clone());
        zoo.save("m", &m);
        assert!(zoo.contains("m"));
        let loaded = zoo.load("m", &cfg).expect("cached model loads");
        let g = toy_graph();
        assert_eq!(
            m.predict_probs(&g, Target::Node(0)),
            loaded.predict_probs(&g, Target::Node(0))
        );
    }

    #[test]
    fn config_mismatch_invalidates_cache() {
        let zoo = ModelZoo::open(tmpdir("mismatch"));
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 2, 3, 5);
        zoo.save("m", &Gnn::new(cfg.clone()));
        let other = GnnConfig {
            hidden_dim: 64,
            ..cfg
        };
        assert!(zoo.load("m", &other).is_none());
    }

    #[test]
    fn get_or_train_trains_once() {
        let zoo = ModelZoo::open(tmpdir("once"));
        let cfg = GnnConfig::standard(GnnKind::Gin, Task::NodeClassification, 2, 3, 6);
        let mut trained = 0;
        let _ = zoo.get_or_train("k", cfg.clone(), |_| trained += 1);
        let _ = zoo.get_or_train("k", cfg, |_| trained += 1);
        assert_eq!(trained, 1);
    }

    #[test]
    fn evict_removes_entry() {
        let zoo = ModelZoo::open(tmpdir("evict"));
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 2, 3, 7);
        zoo.save("e", &Gnn::new(cfg));
        zoo.evict("e");
        assert!(!zoo.contains("e"));
    }
}
