//! A minimal JSON reader/writer for the model-zoo cache format.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the zoo only
//! needs to round-trip one small document shape, so this module implements
//! exactly that: parsing into a [`Json`] tree and field extraction helpers.
//! Numbers keep their raw token so `u64` seeds and shortest-round-trip `f32`
//! parameters survive exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    /// Raw number token, exactly as it appeared in the input.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String payload.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number token parsed as `u64`.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number token parsed as `usize`.
    pub(crate) fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number token parsed as `f32`.
    pub(crate) fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub(crate) fn parse(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => parse_str(bytes, pos).map(Json::Str),
        b't' => parse_lit(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null").map(|()| Json::Null),
        _ => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).ok()?;
    // Validate: every number token must at least parse as f64.
    raw.parse::<f64>().ok()?;
    Some(Json::Num(raw.to_owned()))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    // The zoo never writes other escapes; reject them.
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 character verbatim.
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

/// Writes `["a","b",...]`-style string content for a quoted key or value.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f32` with Rust's shortest round-trip formatting.
pub(crate) fn write_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; the parser rejects these tokens on load,
        // invalidating the cache entry rather than corrupting it silently.
        let _ = write!(out, "\"{v}\"");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, -2.5e3, []], "b": {"c": "x\"y"}, "d": true, "e": null} "#;
        let v = parse(doc).expect("valid json");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()?.first()?.as_u64()),
            Some(1)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")?.as_str()), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{not json",
            "[1,]",
            "{\"a\":}",
            "[1] trailing",
            "",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn f32_round_trips_exactly() {
        for v in [0.1f32, -3.402_823_5e38, 1e-45, 0.0, 123.456] {
            let mut s = String::new();
            write_f32(&mut s, v);
            let back = parse(&s).and_then(|j| j.as_f32()).expect("parses");
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn u64_seeds_survive() {
        let raw = u64::MAX.to_string();
        let v = parse(&raw).expect("parses");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn non_finite_floats_are_quarantined() {
        let mut s = String::new();
        write_f32(&mut s, f32::NAN);
        // The writer produces a string token, so as_f32 on the parsed value
        // fails and the zoo treats the entry as corrupt.
        assert_eq!(parse(&s).and_then(|j| j.as_f32()), None);
    }
}
