//! Training loops for node- and graph-classification models.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use revelio_graph::{Graph, MpGraph, Target};
use revelio_tensor::{clip_grad_norm, Adam, Optimizer, Tensor};

use crate::model::{Gnn, Task};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f32,
    pub weight_decay: f32,
    /// Graph-classification minibatch size (gradient accumulation).
    pub batch_size: usize,
    /// Global gradient-norm clip applied before each optimizer step
    /// (guards against late-training loss spikes); `None` disables.
    pub clip_norm: Option<f32>,
    /// Shuffling / batching seed.
    pub seed: u64,
    /// Print progress every `report_every` epochs (0 = silent).
    pub report_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            lr: 1e-2,
            weight_decay: 5e-4,
            batch_size: 32,
            clip_norm: Some(5.0),
            seed: 0,
            report_every: 0,
        }
    }
}

/// Trains a node classifier full-batch on `g`, using cross-entropy over
/// `train_idx`. Returns the final training loss.
///
/// # Panics
///
/// Panics if the model is not a node-classification model or `g` lacks node
/// labels.
pub fn train_node_classifier(
    model: &Gnn,
    g: &Graph,
    train_idx: &[usize],
    cfg: &TrainConfig,
) -> f32 {
    assert_eq!(model.config().task, Task::NodeClassification);
    let labels = g.node_labels().expect("node labels required for training");
    let targets: Vec<usize> = train_idx.iter().map(|&v| labels[v]).collect();
    let mp = MpGraph::new(g);
    let x = Gnn::features_tensor(g);

    let mut opt = Adam::with_config(
        model.params(),
        revelio_tensor::AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            ..Default::default()
        },
    );

    let mut last_loss = f32::NAN;
    for epoch in 0..cfg.epochs {
        opt.zero_grad();
        let logits = model.node_logits(&mp, &x, None);
        // Fused softmax + cross-entropy: bit-identical to the unfused
        // `log_softmax_rows().nll_loss(..)` chain, one pass per epoch.
        let loss = logits.gather_rows(train_idx).softmax_xent(&targets);
        loss.backward();
        if let Some(max) = cfg.clip_norm {
            clip_grad_norm(&model.params(), max);
        }
        opt.step();
        last_loss = loss.item();
        if cfg.report_every > 0 && epoch % cfg.report_every == 0 {
            // Opt-in progress reporting (report_every = 0 silences it).
            #[allow(clippy::print_stderr)]
            {
                eprintln!("epoch {epoch}: loss {last_loss:.4}");
            }
        }
    }
    last_loss
}

/// Accuracy of a node classifier over the given node indices.
pub fn evaluate_node_accuracy(model: &Gnn, g: &Graph, idx: &[usize]) -> f64 {
    let labels = g.node_labels().expect("node labels required");
    let mp = MpGraph::new(g);
    let x = Gnn::features_tensor(g);
    let logits = model.node_logits(&mp, &x, None);
    let data = logits.data();
    let c = logits.cols();
    let correct = idx
        .iter()
        .filter(|&&v| {
            let row = &data[v * c..(v + 1) * c];
            crate::model::argmax(row) == labels[v]
        })
        .count();
    correct as f64 / idx.len().max(1) as f64
}

/// Trains a graph classifier with minibatch gradient accumulation. Returns
/// the mean loss of the final epoch.
///
/// # Panics
///
/// Panics if the model is not a graph-classification model or any graph
/// lacks a label.
pub fn train_graph_classifier(
    model: &Gnn,
    graphs: &[Graph],
    train_idx: &[usize],
    cfg: &TrainConfig,
) -> f32 {
    assert_eq!(model.config().task, Task::GraphClassification);
    let prepared: Vec<(MpGraph, Tensor, usize)> = train_idx
        .iter()
        .map(|&i| {
            let g = &graphs[i];
            (
                MpGraph::new(g),
                Gnn::features_tensor(g),
                g.graph_label().expect("graph label required"),
            )
        })
        .collect();

    let mut opt = Adam::with_config(
        model.params(),
        revelio_tensor::AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..prepared.len()).collect();

    let mut epoch_loss = f32::NAN;
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for batch in order.chunks(cfg.batch_size) {
            opt.zero_grad();
            let scale = 1.0 / batch.len() as f32;
            for &i in batch {
                let (mp, x, label) = &prepared[i];
                let loss = model
                    .graph_logits(mp, x, None)
                    .softmax_xent(&[*label])
                    .mul_scalar(scale);
                loss.backward();
                total += loss.item();
            }
            if let Some(max) = cfg.clip_norm {
                clip_grad_norm(&model.params(), max);
            }
            opt.step();
        }
        epoch_loss = total / order.chunks(cfg.batch_size).count() as f32;
        if cfg.report_every > 0 && epoch % cfg.report_every == 0 {
            // Opt-in progress reporting (report_every = 0 silences it).
            #[allow(clippy::print_stderr)]
            {
                eprintln!("epoch {epoch}: loss {epoch_loss:.4}");
            }
        }
    }
    epoch_loss
}

/// Accuracy of a graph classifier over the given graph indices.
pub fn evaluate_graph_accuracy(model: &Gnn, graphs: &[Graph], idx: &[usize]) -> f64 {
    let correct = idx
        .iter()
        .filter(|&&i| {
            let g = &graphs[i];
            model.predict_class(g, Target::Graph) == g.graph_label().expect("label")
        })
        .count();
    correct as f64 / idx.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GnnConfig, GnnKind};

    /// A trivially separable node task: two cliques, features = clique id.
    fn two_cliques() -> (Graph, Vec<usize>) {
        let mut b = Graph::builder(8, 2);
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.undirected_edge(base + i, base + j);
                }
                b.node_features(base + i, &[1.0 - c as f32, c as f32]);
            }
        }
        b.node_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let idx = (0..8).collect();
        (b.build(), idx)
    }

    #[test]
    fn node_training_reaches_full_accuracy_on_separable_task() {
        let (g, idx) = two_cliques();
        for kind in [GnnKind::Gcn, GnnKind::Gin, GnnKind::Gat] {
            let m = Gnn::new(GnnConfig::standard(
                kind,
                Task::NodeClassification,
                2,
                2,
                11,
            ));
            let cfg = TrainConfig {
                epochs: 120,
                weight_decay: 0.0,
                ..Default::default()
            };
            train_node_classifier(&m, &g, &idx, &cfg);
            let acc = evaluate_node_accuracy(&m, &g, &idx);
            assert!(acc > 0.99, "{} accuracy {acc}", kind.name());
        }
    }

    /// Trivially separable graph task: triangle vs path, distinct features.
    fn toy_graph_dataset() -> Vec<Graph> {
        let mut graphs = Vec::new();
        for i in 0..20 {
            let class = i % 2;
            let mut b = Graph::builder(3, 2);
            b.undirected_edge(0, 1).undirected_edge(1, 2);
            if class == 0 {
                b.undirected_edge(0, 2);
            }
            for v in 0..3 {
                b.node_features(v, &[1.0 - class as f32, class as f32]);
            }
            b.graph_label(class);
            graphs.push(b.build());
        }
        graphs
    }

    #[test]
    fn graph_training_learns_toy_task() {
        let graphs = toy_graph_dataset();
        let idx: Vec<usize> = (0..graphs.len()).collect();
        let m = Gnn::new(GnnConfig::standard(
            GnnKind::Gin,
            Task::GraphClassification,
            2,
            2,
            13,
        ));
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 4,
            weight_decay: 0.0,
            ..Default::default()
        };
        let loss = train_graph_classifier(&m, &graphs, &idx, &cfg);
        assert!(loss.is_finite());
        let acc = evaluate_graph_accuracy(&m, &graphs, &idx);
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
