//! Individual GNN layers with mask-aware message passing.
//!
//! Each layer implements the three steps of §III — message calculation,
//! aggregation, update — with an optional `[|E|, 1]` layer-edge mask
//! multiplied into the message step (Eq. 6). Layer edges are those of
//! [`MpGraph`]: the stored directed edges plus one self-loop per node.

use revelio_graph::MpGraph;
use revelio_tensor::{glorot_uniform, Tensor};

/// A single GNN layer.
pub enum Layer {
    /// Kipf & Welling graph convolution with symmetric normalisation.
    Gcn { weight: Tensor, bias: Tensor },
    /// Graph Isomorphism Network layer; the `(1+ε)·h_v` self term is carried
    /// by the self-loop edge so flow masks gate it uniformly, and the update
    /// is a two-layer MLP.
    Gin {
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
    },
    /// Graph attention layer with `heads` attention heads. Hidden layers
    /// concatenate head outputs; the final layer averages them.
    Gat {
        weight: Tensor,
        bias: Tensor,
        /// Per head: `[head_dim, 1]` source attention vector.
        att_src: Vec<Tensor>,
        /// Per head: `[head_dim, 1]` destination attention vector.
        att_dst: Vec<Tensor>,
        heads: usize,
        /// Average head outputs instead of concatenating (final layer).
        average_heads: bool,
    },
}

impl Layer {
    /// Creates a GCN layer.
    pub fn gcn(in_dim: usize, out_dim: usize, seed: u64) -> Layer {
        Layer::Gcn {
            weight: glorot_uniform(in_dim, out_dim, seed).requires_grad(),
            bias: Tensor::zeros(1, out_dim).requires_grad(),
        }
    }

    /// Creates a GIN layer with a 2-layer MLP update.
    pub fn gin(in_dim: usize, out_dim: usize, seed: u64) -> Layer {
        Layer::Gin {
            w1: glorot_uniform(in_dim, out_dim, seed).requires_grad(),
            b1: Tensor::zeros(1, out_dim).requires_grad(),
            w2: glorot_uniform(out_dim, out_dim, seed ^ 0x9e37_79b9).requires_grad(),
            b2: Tensor::zeros(1, out_dim).requires_grad(),
        }
    }

    /// Creates a GAT layer.
    ///
    /// When concatenating (`average_heads == false`), `out_dim` must be a
    /// multiple of `heads`; when averaging, every head has dimension
    /// `out_dim`.
    pub fn gat(
        in_dim: usize,
        out_dim: usize,
        heads: usize,
        average_heads: bool,
        seed: u64,
    ) -> Layer {
        let head_dim = if average_heads {
            out_dim
        } else {
            assert_eq!(out_dim % heads, 0, "GAT: out_dim must divide into heads");
            out_dim / heads
        };
        let total = head_dim * heads;
        let att_src = (0..heads)
            .map(|h| glorot_uniform(head_dim, 1, seed ^ (0xa11 + h as u64)).requires_grad())
            .collect();
        let att_dst = (0..heads)
            .map(|h| glorot_uniform(head_dim, 1, seed ^ (0xb22 + h as u64)).requires_grad())
            .collect();
        Layer::Gat {
            weight: glorot_uniform(in_dim, total, seed).requires_grad(),
            bias: Tensor::zeros(1, if average_heads { head_dim } else { total }).requires_grad(),
            att_src,
            att_dst,
            heads,
            average_heads,
        }
    }

    /// All trainable parameters of the layer.
    pub fn params(&self) -> Vec<Tensor> {
        match self {
            Layer::Gcn { weight, bias } => vec![weight.clone(), bias.clone()],
            Layer::Gin { w1, b1, w2, b2 } => {
                vec![w1.clone(), b1.clone(), w2.clone(), b2.clone()]
            }
            Layer::Gat {
                weight,
                bias,
                att_src,
                att_dst,
                ..
            } => {
                let mut p = vec![weight.clone(), bias.clone()];
                p.extend(att_src.iter().cloned());
                p.extend(att_dst.iter().cloned());
                p
            }
        }
    }

    /// Output dimensionality given the layer parameters.
    pub fn out_dim(&self) -> usize {
        match self {
            Layer::Gcn { weight, .. } => weight.cols(),
            Layer::Gin { w2, .. } => w2.cols(),
            Layer::Gat {
                weight,
                heads,
                average_heads,
                ..
            } => {
                if *average_heads {
                    weight.cols() / heads
                } else {
                    weight.cols()
                }
            }
        }
    }

    /// Forward pass: `h` is `[n, in_dim]`, `mask` (if given) is `[|E|, 1]`
    /// over the layer edges of `mp`, `gcn_norm` is the precomputed GCN
    /// normalisation (ignored by the other architectures).
    pub fn forward(
        &self,
        mp: &MpGraph,
        h: &Tensor,
        mask: Option<&Tensor>,
        gcn_norm: &Tensor,
    ) -> Tensor {
        self.forward_fused(mp, h, mask, gcn_norm, None)
    }

    /// [`Layer::forward`] with an optional trailing activation fused into
    /// the final bias add: with `trailing_slope = Some(s)` the result is
    /// bit-identical to `forward(..).leaky_relu(s)` but saves the extra
    /// full-matrix passes per epoch of mask optimization.
    pub fn forward_fused(
        &self,
        mp: &MpGraph,
        h: &Tensor,
        mask: Option<&Tensor>,
        gcn_norm: &Tensor,
        trailing_slope: Option<f32>,
    ) -> Tensor {
        let n = mp.num_nodes();
        if let Some(m) = mask {
            assert_eq!(
                m.shape(),
                (mp.layer_edge_count(), 1),
                "layer-edge mask has wrong shape"
            );
        }
        let finish = |t: Tensor, bias: &Tensor| match trailing_slope {
            Some(s) => t.bias_leaky_relu(bias, s),
            None => t.add_row_broadcast(bias),
        };
        match self {
            Layer::Gcn { weight, bias } => {
                let hw = h.matmul(weight);
                let mut msgs = hw.gather_rows(mp.src()).mul_col_broadcast(gcn_norm);
                if let Some(m) = mask {
                    msgs = msgs.mul_col_broadcast(m);
                }
                finish(msgs.scatter_add_rows(mp.dst(), n), bias)
            }
            Layer::Gin { w1, b1, w2, b2 } => {
                // The first MLP matmul commutes with the (linear) sum
                // aggregation, so transform before gathering: messages are
                // then `out_dim` wide instead of `in_dim` wide — a large
                // saving on high-dimensional inputs (e.g. Citeseer's 3703).
                let hw = h.matmul(w1);
                let mut msgs = hw.gather_rows(mp.src());
                if let Some(m) = mask {
                    msgs = msgs.mul_col_broadcast(m);
                }
                let agg = msgs.scatter_add_rows(mp.dst(), n);
                // Leaky slope avoids whole-layer dying-ReLU collapse, which
                // full-batch training on constant-feature graphs provokes
                // (the original uses batch norm for the same reason).
                finish(agg.bias_leaky_relu(b1, 0.01).matmul(w2), b2)
            }
            Layer::Gat {
                weight,
                bias,
                att_src,
                att_dst,
                heads,
                average_heads,
            } => {
                let hw = h.matmul(weight);
                let head_dim = hw.cols() / heads;
                let mut head_outs: Option<Tensor> = None;
                for k in 0..*heads {
                    let hw_k = hw.slice_cols(k * head_dim, (k + 1) * head_dim);
                    let a_src = hw_k.matmul(&att_src[k]);
                    let a_dst = hw_k.matmul(&att_dst[k]);
                    let logits = a_src
                        .gather_rows(mp.src())
                        .add(&a_dst.gather_rows(mp.dst()))
                        .leaky_relu(0.2);
                    let att = logits.segment_softmax(mp.dst());
                    let mut msgs = hw_k.gather_rows(mp.src()).mul_col_broadcast(&att);
                    if let Some(m) = mask {
                        msgs = msgs.mul_col_broadcast(m);
                    }
                    let agg = msgs.scatter_add_rows(mp.dst(), n);
                    head_outs = Some(match head_outs {
                        None => agg,
                        Some(prev) => {
                            if *average_heads {
                                prev.add(&agg)
                            } else {
                                prev.concat_cols(&agg)
                            }
                        }
                    });
                }
                let out = head_outs.expect("at least one head");
                let out = if *average_heads {
                    out.mul_scalar(1.0 / *heads as f32)
                } else {
                    out
                };
                finish(out, bias)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revelio_graph::Graph;

    fn tiny() -> (MpGraph, Tensor) {
        let mut b = Graph::builder(3, 4);
        b.undirected_edge(0, 1).undirected_edge(1, 2);
        let g = b.build();
        let mp = MpGraph::new(&g);
        let x = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), 3, 4);
        (mp, x)
    }

    fn norm_tensor(mp: &MpGraph) -> Tensor {
        Tensor::from_vec(mp.gcn_norm(), mp.layer_edge_count(), 1)
    }

    #[test]
    fn gcn_forward_shape_and_grad() {
        let (mp, x) = tiny();
        let layer = Layer::gcn(4, 8, 0);
        let norm = norm_tensor(&mp);
        let out = layer.forward(&mp, &x, None, &norm);
        assert_eq!(out.shape(), (3, 8));
        out.sum_all().backward();
        for p in layer.params() {
            assert!(p.has_grad());
        }
    }

    #[test]
    fn gin_forward_shape() {
        let (mp, x) = tiny();
        let layer = Layer::gin(4, 6, 1);
        let norm = norm_tensor(&mp);
        assert_eq!(layer.forward(&mp, &x, None, &norm).shape(), (3, 6));
        assert_eq!(layer.out_dim(), 6);
    }

    #[test]
    fn gat_concat_and_average_shapes() {
        let (mp, x) = tiny();
        let norm = norm_tensor(&mp);
        let cat = Layer::gat(4, 8, 4, false, 2);
        assert_eq!(cat.forward(&mp, &x, None, &norm).shape(), (3, 8));
        assert_eq!(cat.out_dim(), 8);
        let avg = Layer::gat(4, 5, 4, true, 3);
        assert_eq!(avg.forward(&mp, &x, None, &norm).shape(), (3, 5));
        assert_eq!(avg.out_dim(), 5);
        // 2 params + 2 * heads attention vectors.
        assert_eq!(avg.params().len(), 2 + 8);
    }

    #[test]
    fn zero_mask_blocks_all_messages() {
        let (mp, x) = tiny();
        let norm = norm_tensor(&mp);
        let layer = Layer::gcn(4, 4, 4);
        let zero_mask = Tensor::zeros(mp.layer_edge_count(), 1);
        let out = layer.forward(&mp, &x, Some(&zero_mask), &norm);
        // With all messages blocked only the bias (zero-init) remains.
        assert!(out.to_vec().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn ones_mask_is_identity() {
        let (mp, x) = tiny();
        let norm = norm_tensor(&mp);
        let layer = Layer::gin(4, 4, 5);
        let unmasked = layer.forward(&mp, &x, None, &norm).to_vec();
        let ones = Tensor::ones(mp.layer_edge_count(), 1);
        let masked = layer.forward(&mp, &x, Some(&ones), &norm).to_vec();
        for (a, b) in unmasked.iter().zip(&masked) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn masking_one_edge_changes_only_reachable_nodes() {
        let (mp, x) = tiny();
        let norm = norm_tensor(&mp);
        let layer = Layer::gcn(4, 4, 6);
        let base = layer.forward(&mp, &x, None, &norm).to_vec();
        // Block edge 0 (0 -> 1): only node 1's output may change.
        let mut mask = vec![1.0f32; mp.layer_edge_count()];
        mask[0] = 0.0;
        let m = Tensor::from_vec(mask, mp.layer_edge_count(), 1);
        let out = layer.forward(&mp, &x, Some(&m), &norm).to_vec();
        for j in 0..4 {
            assert!((base[j] - out[j]).abs() < 1e-6, "node 0 changed");
            assert!((base[8 + j] - out[8 + j]).abs() < 1e-6, "node 2 changed");
        }
        let node1_changed = (0..4).any(|j| (base[4 + j] - out[4 + j]).abs() > 1e-6);
        assert!(node1_changed);
    }
}
