//! The [`Gnn`] model: a stack of message-passing layers with task heads.

use revelio_graph::{Graph, MpGraph, Target};
use revelio_tensor::{glorot_uniform, Tensor};

use crate::layer::Layer;

/// Architecture family, matching the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnKind {
    Gcn,
    Gin,
    Gat,
}

impl GnnKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            GnnKind::Gcn => "GCN",
            GnnKind::Gin => "GIN",
            GnnKind::Gat => "GAT",
        }
    }
}

/// Prediction task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    NodeClassification,
    GraphClassification,
}

/// Model hyperparameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnnConfig {
    pub kind: GnnKind,
    pub task: Task,
    pub in_dim: usize,
    pub hidden_dim: usize,
    pub num_classes: usize,
    /// The paper uses three layers everywhere.
    pub num_layers: usize,
    /// GAT attention heads (the paper uses eight).
    pub heads: usize,
    pub seed: u64,
}

impl GnnConfig {
    /// The paper's standard configuration: three layers, hidden width 32,
    /// eight GAT heads.
    pub fn standard(
        kind: GnnKind,
        task: Task,
        in_dim: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        GnnConfig {
            kind,
            task,
            in_dim,
            hidden_dim: 32,
            num_classes,
            num_layers: 3,
            heads: 8,
            seed,
        }
    }
}

/// A trained (or trainable) GNN.
pub struct Gnn {
    cfg: GnnConfig,
    layers: Vec<Layer>,
    /// Graph-classification readout: `hidden -> classes` linear head.
    readout: Option<(Tensor, Tensor)>,
}

impl Gnn {
    /// Builds a model with freshly initialised weights.
    pub fn new(cfg: GnnConfig) -> Self {
        assert!(cfg.num_layers >= 1);
        let mut layers = Vec::with_capacity(cfg.num_layers);
        // For node classification the last GNN layer maps to classes; for
        // graph classification all layers map to hidden and a linear readout
        // follows the mean-pool.
        let last_is_logits = cfg.task == Task::NodeClassification;
        for l in 0..cfg.num_layers {
            let in_dim = if l == 0 { cfg.in_dim } else { cfg.hidden_dim };
            let is_last = l + 1 == cfg.num_layers;
            let out_dim = if is_last && last_is_logits {
                cfg.num_classes
            } else {
                cfg.hidden_dim
            };
            let seed = cfg.seed ^ ((l as u64 + 1) * 0x51_7c_c1);
            let layer = match cfg.kind {
                GnnKind::Gcn => Layer::gcn(in_dim, out_dim, seed),
                GnnKind::Gin => Layer::gin(in_dim, out_dim, seed),
                GnnKind::Gat => {
                    let average = is_last && last_is_logits;
                    Layer::gat(in_dim, out_dim, cfg.heads, average, seed)
                }
            };
            layers.push(layer);
        }
        let readout = (cfg.task == Task::GraphClassification).then(|| {
            (
                glorot_uniform(cfg.hidden_dim, cfg.num_classes, cfg.seed ^ 0x0ead).requires_grad(),
                Tensor::zeros(1, cfg.num_classes).requires_grad(),
            )
        });
        Gnn {
            cfg,
            layers,
            readout,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &GnnConfig {
        &self.cfg
    }

    /// Number of message-passing layers `L`.
    pub fn num_layers(&self) -> usize {
        self.cfg.num_layers
    }

    /// The message-passing layers (used by decomposition-based explainers
    /// such as GNN-LRP that must inspect per-layer weights and messages).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The graph-classification readout head `(weight, bias)`, if any.
    pub fn readout(&self) -> Option<(&Tensor, &Tensor)> {
        self.readout.as_ref().map(|(w, b)| (w, b))
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(Layer::params).collect();
        if let Some((w, b)) = &self.readout {
            p.push(w.clone());
            p.push(b.clone());
        }
        p
    }

    /// The node feature matrix of `g` as a tensor.
    pub fn features_tensor(g: &Graph) -> Tensor {
        Tensor::from_vec(g.features().to_vec(), g.num_nodes(), g.feat_dim())
    }

    /// The GCN normalisation vector of `mp` as a constant tensor.
    pub fn norm_tensor(mp: &MpGraph) -> Tensor {
        Tensor::from_vec(mp.gcn_norm(), mp.layer_edge_count(), 1)
    }

    /// Runs all message-passing layers, returning every layer's
    /// post-activation output (`hidden` for intermediate layers; the last
    /// entry is raw logits for node classification or the final hidden
    /// representation for graph classification).
    ///
    /// `masks`, if given, supplies one `[|E|, 1]` mask per layer (Eq. 6).
    pub fn forward_layers(
        &self,
        mp: &MpGraph,
        x: &Tensor,
        masks: Option<&[Tensor]>,
    ) -> Vec<Tensor> {
        if let Some(ms) = masks {
            assert_eq!(ms.len(), self.cfg.num_layers, "one mask per layer required");
        }
        let norm = Self::norm_tensor(mp);
        let mut outs = Vec::with_capacity(self.cfg.num_layers);
        let mut h = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let mask = masks.map(|ms| &ms[l]);
            let is_last = l + 1 == self.cfg.num_layers;
            let keep_raw = is_last && self.cfg.task == Task::NodeClassification;
            // Leaky activation between layers: plain ReLU can kill every
            // unit at once under full-batch training (dying-ReLU), freezing
            // the model at the class prior.
            let out = if keep_raw {
                layer.forward(mp, &h, mask, &norm)
            } else {
                // Fused into the layer's final bias add — bit-identical to
                // `forward(..).leaky_relu(0.01)` but one pass over the matrix.
                layer.forward_fused(mp, &h, mask, &norm, Some(0.01))
            };
            outs.push(out.clone());
            h = out;
        }
        outs
    }

    /// Node-classification logits `[n, C]`.
    pub fn node_logits(&self, mp: &MpGraph, x: &Tensor, masks: Option<&[Tensor]>) -> Tensor {
        assert_eq!(self.cfg.task, Task::NodeClassification);
        self.forward_layers(mp, x, masks)
            .pop()
            .expect("at least one layer")
    }

    /// Graph-classification logits `[1, C]` (mean-pool readout).
    pub fn graph_logits(&self, mp: &MpGraph, x: &Tensor, masks: Option<&[Tensor]>) -> Tensor {
        assert_eq!(self.cfg.task, Task::GraphClassification);
        let h = self
            .forward_layers(mp, x, masks)
            .pop()
            .expect("at least one layer");
        let (w, b) = self.readout.as_ref().expect("graph task has a readout");
        // Sum pooling (realised as mean × n): standard for GIN-style graph
        // classification and markedly easier to optimise than mean pooling
        // when the discriminative motif covers few nodes.
        let n = h.rows() as f32;
        h.mean_rows().mul_scalar(n).matmul(w).add_row_broadcast(b)
    }

    /// Logits for an explanation target: `[1, C]` — the target node's row,
    /// or the pooled graph logits.
    pub fn target_logits(
        &self,
        mp: &MpGraph,
        x: &Tensor,
        masks: Option<&[Tensor]>,
        target: Target,
    ) -> Tensor {
        match (self.cfg.task, target) {
            (Task::NodeClassification, Target::Node(v)) => {
                self.node_logits(mp, x, masks).gather_rows(&[v])
            }
            (Task::GraphClassification, Target::Graph) => self.graph_logits(mp, x, masks),
            (task, target) => panic!("target {target:?} does not match task {task:?}"),
        }
    }

    /// Class probabilities for an explanation target.
    pub fn predict_probs(&self, g: &Graph, target: Target) -> Vec<f32> {
        let mp = MpGraph::new(g);
        let x = Self::features_tensor(g);
        self.target_logits(&mp, &x, None, target)
            .log_softmax_rows()
            .to_vec()
            .iter()
            .map(|lp| lp.exp())
            .collect()
    }

    /// The predicted class for an explanation target.
    pub fn predict_class(&self, g: &Graph, target: Target) -> usize {
        argmax(&self.predict_probs(g, target))
    }

    // ------------------------------------------------------------------
    // Serialization (model zoo)
    // ------------------------------------------------------------------

    /// Copies all parameter buffers out, in [`Gnn::params`] order.
    pub fn state_dict(&self) -> Vec<Vec<f32>> {
        self.params().iter().map(Tensor::to_vec).collect()
    }

    /// Loads parameter buffers saved by [`Gnn::state_dict`].
    ///
    /// # Panics
    ///
    /// Panics if the number or shapes of buffers do not match.
    pub fn load_state(&self, state: &[Vec<f32>]) {
        let params = self.params();
        assert_eq!(params.len(), state.len(), "state dict length mismatch");
        for (p, s) in params.iter().zip(state) {
            p.set_data(s);
        }
    }
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_graph() -> Graph {
        let mut b = Graph::builder(5, 3);
        for v in 1..5 {
            b.undirected_edge(0, v);
            b.node_features(v, &[v as f32, 1.0, 0.0]);
        }
        b.node_features(0, &[0.0, 0.0, 1.0]);
        b.build()
    }

    #[test]
    fn node_model_shapes() {
        let g = star_graph();
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 3, 4, 0);
        let m = Gnn::new(cfg);
        let mp = MpGraph::new(&g);
        let x = Gnn::features_tensor(&g);
        let logits = m.node_logits(&mp, &x, None);
        assert_eq!(logits.shape(), (5, 4));
        let probs = m.predict_probs(&g, Target::Node(0));
        assert_eq!(probs.len(), 4);
        let s: f32 = probs.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn graph_model_shapes() {
        let g = star_graph();
        for kind in [GnnKind::Gcn, GnnKind::Gin, GnnKind::Gat] {
            let cfg = GnnConfig::standard(kind, Task::GraphClassification, 3, 2, 1);
            let m = Gnn::new(cfg);
            let mp = MpGraph::new(&g);
            let x = Gnn::features_tensor(&g);
            assert_eq!(m.graph_logits(&mp, &x, None).shape(), (1, 2));
            assert!(m.predict_class(&g, Target::Graph) < 2);
        }
    }

    #[test]
    fn gat_node_model_runs() {
        let g = star_graph();
        let cfg = GnnConfig::standard(GnnKind::Gat, Task::NodeClassification, 3, 4, 2);
        let m = Gnn::new(cfg);
        let probs = m.predict_probs(&g, Target::Node(3));
        assert_eq!(probs.len(), 4);
    }

    #[test]
    fn state_dict_roundtrip_preserves_outputs() {
        let g = star_graph();
        let cfg = GnnConfig::standard(GnnKind::Gin, Task::NodeClassification, 3, 4, 3);
        let a = Gnn::new(cfg.clone());
        let b = Gnn::new(GnnConfig { seed: 99, ..cfg });
        let before = b.predict_probs(&g, Target::Node(1));
        b.load_state(&a.state_dict());
        let after = b.predict_probs(&g, Target::Node(1));
        let reference = a.predict_probs(&g, Target::Node(1));
        assert_ne!(before, after);
        assert_eq!(after, reference);
    }

    #[test]
    fn masks_change_predictions() {
        let g = star_graph();
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 3, 4, 4);
        let m = Gnn::new(cfg);
        let mp = MpGraph::new(&g);
        let x = Gnn::features_tensor(&g);
        let full = m.target_logits(&mp, &x, None, Target::Node(0)).to_vec();
        let half_masks: Vec<Tensor> = (0..3)
            .map(|_| Tensor::full(0.5, mp.layer_edge_count(), 1))
            .collect();
        let masked = m
            .target_logits(&mp, &x, Some(&half_masks), Target::Node(0))
            .to_vec();
        assert_ne!(full, masked);
    }

    #[test]
    #[should_panic(expected = "does not match task")]
    fn mismatched_target_panics() {
        let g = star_graph();
        let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 3, 4, 5);
        let m = Gnn::new(cfg);
        let mp = MpGraph::new(&g);
        let x = Gnn::features_tensor(&g);
        let _ = m.target_logits(&mp, &x, None, Target::Graph);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[0.1, 0.5, 0.5]), 1);
    }
}
