//! GNN models (GCN / GIN / GAT), training loops and a model cache for the
//! REVELIO reproduction.
//!
//! All three architectures share the message-passing skeleton of §III of the
//! paper — message calculation, aggregation, node update — realised with the
//! tensor engine's gather/scatter primitives. Every layer accepts an
//! optional per-layer-edge mask which multiplies the message step (Eq. 6),
//! the hook through which REVELIO and the perturbation-based baselines
//! operate.
//!
//! Models follow the paper's evaluation setup: three layers, GAT with eight
//! attention heads, node-classification logits straight from the last layer,
//! graph-classification via mean-pool readout plus a linear head.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod instance;
mod json;
mod layer;
mod model;
mod train;
mod zoo;

pub use instance::Instance;
pub use layer::Layer;
pub use model::{Gnn, GnnConfig, GnnKind, Task};
pub use train::{
    evaluate_graph_accuracy, evaluate_node_accuracy, train_graph_classifier, train_node_classifier,
    TrainConfig,
};
pub use zoo::ModelZoo;
