//! The [`Graph`] container: directed edges, node features, labels.

use std::collections::HashSet;

/// A directed graph with dense node features.
///
/// Edges are directed and self-loops are *not* stored here — the
/// message-passing view ([`crate::MpGraph`]) adds them, matching the paper's
/// convention ("edges are considered as directed without self-loops",
/// Table III) while GNN layers still aggregate each node's own state.
///
/// Undirected datasets store both edge directions explicitly.
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    feat_dim: usize,
    edges: Vec<(u32, u32)>,
    features: Vec<f32>,
    node_labels: Option<Vec<usize>>,
    graph_label: Option<usize>,
}

impl Graph {
    /// Starts building a graph with `num_nodes` nodes and `feat_dim`
    /// features per node (initialised to zero).
    pub fn builder(num_nodes: usize, feat_dim: usize) -> GraphBuilder {
        GraphBuilder {
            num_nodes,
            feat_dim,
            edges: Vec::new(),
            seen: HashSet::new(),
            features: vec![0.0; num_nodes * feat_dim],
            node_labels: None,
            graph_label: None,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges (excluding self-loops, which are never stored).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Feature dimensionality.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// The directed edge list; index into it is the *original edge id* used
    /// by explanations and fidelity evaluation.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Row-major `[num_nodes, feat_dim]` feature matrix.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// The feature row of one node.
    pub fn feature_row(&self, node: usize) -> &[f32] {
        &self.features[node * self.feat_dim..(node + 1) * self.feat_dim]
    }

    /// Per-node labels, if this is a node-classification graph.
    pub fn node_labels(&self) -> Option<&[usize]> {
        self.node_labels.as_deref()
    }

    /// The graph-level label, if this is a graph-classification instance.
    pub fn graph_label(&self) -> Option<usize> {
        self.graph_label
    }

    /// Whether the directed edge `src -> dst` exists.
    pub fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.edges
            .iter()
            .any(|&(s, d)| s as usize == src && d as usize == dst)
    }

    /// In-degree of `node` (number of stored edges ending at it).
    pub fn in_degree(&self, node: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(_, d)| d as usize == node)
            .count()
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(s, _)| s as usize == node)
            .count()
    }

    /// Returns a copy of this graph restricted to the edges whose ids appear
    /// in `keep` (node set, features and labels are unchanged).
    ///
    /// This is the perturbation primitive for Fidelity evaluation: removing
    /// "unimportant" (Fidelity−) or "important" (Fidelity+) edges.
    pub fn with_edges(&self, keep: &[usize]) -> Graph {
        let mut edges = Vec::with_capacity(keep.len());
        for &e in keep {
            assert!(e < self.edges.len(), "with_edges: edge id {e} out of range");
            edges.push(self.edges[e]);
        }
        Graph {
            num_nodes: self.num_nodes,
            feat_dim: self.feat_dim,
            edges,
            features: self.features.clone(),
            node_labels: self.node_labels.clone(),
            graph_label: self.graph_label,
        }
    }

    /// Replaces the feature matrix (used by perturbation-based baselines).
    ///
    /// # Panics
    ///
    /// Panics if the new matrix has the wrong length.
    pub fn with_features(&self, features: Vec<f32>) -> Graph {
        assert_eq!(
            features.len(),
            self.num_nodes * self.feat_dim,
            "with_features: length mismatch"
        );
        Graph {
            features,
            ..self.clone()
        }
    }
}

/// Incremental builder for [`Graph`].
pub struct GraphBuilder {
    num_nodes: usize,
    feat_dim: usize,
    edges: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
    features: Vec<f32>,
    node_labels: Option<Vec<usize>>,
    graph_label: Option<usize>,
}

impl GraphBuilder {
    /// Adds a directed edge `src -> dst`. Duplicate edges and self-loops are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicates.
    pub fn edge(&mut self, src: usize, dst: usize) -> &mut Self {
        assert!(
            src < self.num_nodes && dst < self.num_nodes,
            "edge endpoint out of range"
        );
        assert_ne!(
            src, dst,
            "self-loops are added by the message-passing view, not stored"
        );
        let key = (src as u32, dst as u32);
        assert!(self.seen.insert(key), "duplicate edge {src}->{dst}");
        self.edges.push(key);
        self
    }

    /// Adds both directions of an undirected edge.
    pub fn undirected_edge(&mut self, a: usize, b: usize) -> &mut Self {
        self.edge(a, b).edge(b, a)
    }

    /// Whether an edge was already added.
    pub fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.seen.contains(&(src as u32, dst as u32))
    }

    /// Sets one node's feature row.
    pub fn node_features(&mut self, node: usize, feats: &[f32]) -> &mut Self {
        assert_eq!(feats.len(), self.feat_dim, "feature row length mismatch");
        self.features[node * self.feat_dim..(node + 1) * self.feat_dim].copy_from_slice(feats);
        self
    }

    /// Sets the full feature matrix at once.
    pub fn all_features(&mut self, feats: Vec<f32>) -> &mut Self {
        assert_eq!(
            feats.len(),
            self.num_nodes * self.feat_dim,
            "feature matrix length mismatch"
        );
        self.features = feats;
        self
    }

    /// Sets per-node labels (node classification).
    pub fn node_labels(&mut self, labels: Vec<usize>) -> &mut Self {
        assert_eq!(labels.len(), self.num_nodes, "one label per node required");
        self.node_labels = Some(labels);
        self
    }

    /// Sets the graph-level label (graph classification).
    pub fn graph_label(&mut self, label: usize) -> &mut Self {
        self.graph_label = Some(label);
        self
    }

    /// Finalises the graph.
    pub fn build(&mut self) -> Graph {
        Graph {
            num_nodes: self.num_nodes,
            feat_dim: self.feat_dim,
            edges: std::mem::take(&mut self.edges),
            features: std::mem::take(&mut self.features),
            node_labels: self.node_labels.take(),
            graph_label: self.graph_label,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = Graph::builder(3, 2);
        b.undirected_edge(0, 1)
            .undirected_edge(1, 2)
            .undirected_edge(0, 2);
        b.node_features(0, &[1.0, 0.0]);
        b.node_labels(vec![0, 1, 0]);
        b.build()
    }

    #[test]
    fn builder_produces_expected_graph() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.feature_row(0), &[1.0, 0.0]);
        assert_eq!(g.node_labels().unwrap(), &[0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = Graph::builder(2, 1);
        b.edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate() {
        let mut b = Graph::builder(2, 1);
        b.edge(0, 1).edge(0, 1);
    }

    #[test]
    fn with_edges_subsets() {
        let g = triangle();
        let sub = g.with_edges(&[0, 1]);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.edges()[0], g.edges()[0]);
    }

    #[test]
    fn with_features_replaces_matrix() {
        let g = triangle();
        let g2 = g.with_features(vec![9.0; 6]);
        assert_eq!(g2.feature_row(2), &[9.0, 9.0]);
        assert_eq!(g.feature_row(0), &[1.0, 0.0]);
    }
}
