//! The message-passing view of a graph: the self-loop-augmented layer-edge
//! set shared by all layers of an `L`-layer GNN.

use crate::graph::Graph;

/// Gather/scatter-ready layer-edge arrays for message passing.
///
/// Layer edges are the stored directed edges of the [`Graph`] followed by one
/// self-loop per node, so `layer_edge_count() == graph.num_edges() + n`.
/// Edge `e < num_orig_edges` corresponds to original edge id `e`; edge
/// `num_orig_edges + v` is the self-loop of node `v`. All GNN layers share
/// this edge set — a *layer edge* `e_ij^l` of the paper is `(l, e)`.
#[derive(Debug, Clone)]
pub struct MpGraph {
    num_nodes: usize,
    num_orig_edges: usize,
    src: Vec<usize>,
    dst: Vec<usize>,
    /// `in_ptr[v]..in_ptr[v+1]` indexes `in_edges`, the layer-edge ids whose
    /// destination is `v` (used by flow enumeration).
    in_ptr: Vec<usize>,
    in_edges: Vec<u32>,
    /// `out_ptr[v]..out_ptr[v+1]` indexes `out_edges`, the layer-edge ids
    /// whose source is `v`.
    out_ptr: Vec<usize>,
    out_edges: Vec<u32>,
}

impl MpGraph {
    /// Builds the message-passing view of `g`, appending one self-loop per
    /// node after the original edges.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let total = m + n;
        let mut src = Vec::with_capacity(total);
        let mut dst = Vec::with_capacity(total);
        for &(s, d) in g.edges() {
            src.push(s as usize);
            dst.push(d as usize);
        }
        for v in 0..n {
            src.push(v);
            dst.push(v);
        }

        let (in_ptr, in_edges) = csr_by(&dst, n);
        let (out_ptr, out_edges) = csr_by(&src, n);

        MpGraph {
            num_nodes: n,
            num_orig_edges: m,
            src,
            dst,
            in_ptr,
            in_edges,
            out_ptr,
            out_edges,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of original (stored) edges, i.e. self-loops excluded.
    pub fn num_orig_edges(&self) -> usize {
        self.num_orig_edges
    }

    /// Total layer edges: original edges plus one self-loop per node.
    pub fn layer_edge_count(&self) -> usize {
        self.src.len()
    }

    /// Source node of each layer edge.
    pub fn src(&self) -> &[usize] {
        &self.src
    }

    /// Destination node of each layer edge.
    pub fn dst(&self) -> &[usize] {
        &self.dst
    }

    /// Whether layer edge `e` is a self-loop.
    pub fn is_self_loop(&self, e: usize) -> bool {
        e >= self.num_orig_edges
    }

    /// The original edge id of layer edge `e`, or `None` for self-loops.
    pub fn orig_edge_id(&self, e: usize) -> Option<usize> {
        (e < self.num_orig_edges).then_some(e)
    }

    /// The self-loop layer-edge id of node `v`.
    pub fn self_loop_edge(&self, v: usize) -> usize {
        self.num_orig_edges + v
    }

    /// Layer-edge ids entering node `v`.
    pub fn in_edges(&self, v: usize) -> &[u32] {
        &self.in_edges[self.in_ptr[v]..self.in_ptr[v + 1]]
    }

    /// Layer-edge ids leaving node `v`.
    pub fn out_edges(&self, v: usize) -> &[u32] {
        &self.out_edges[self.out_ptr[v]..self.out_ptr[v + 1]]
    }

    /// In-degree of `v` counting the self-loop.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_ptr[v + 1] - self.in_ptr[v]
    }

    /// GCN symmetric normalisation `1 / sqrt(deg_in(i) * deg_in(j))` per
    /// layer edge, with degrees counted on the self-loop-augmented graph
    /// (matching Kipf & Welling's `D^{-1/2} (A+I) D^{-1/2}` for undirected
    /// inputs).
    pub fn gcn_norm(&self) -> Vec<f32> {
        let deg: Vec<f32> = (0..self.num_nodes)
            .map(|v| self.in_degree(v) as f32)
            .collect();
        self.src
            .iter()
            .zip(&self.dst)
            .map(|(&s, &d)| 1.0 / (deg[s] * deg[d]).sqrt())
            .collect()
    }
}

fn csr_by(keys: &[usize], n: usize) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n];
    for &k in keys {
        counts[k] += 1;
    }
    let mut ptr = Vec::with_capacity(n + 1);
    let mut running = 0usize;
    ptr.push(running);
    for &c in &counts {
        running += c;
        ptr.push(running);
    }
    let mut cursor = ptr.clone();
    let mut ids = vec![0u32; keys.len()];
    for (e, &k) in keys.iter().enumerate() {
        ids[cursor[k]] = e as u32;
        cursor[k] += 1;
    }
    (ptr, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        // 0 -> 1 -> 2
        let mut b = Graph::builder(3, 1);
        b.edge(0, 1).edge(1, 2);
        b.build()
    }

    #[test]
    fn appends_self_loops() {
        let mp = MpGraph::new(&path_graph());
        assert_eq!(mp.layer_edge_count(), 5);
        assert_eq!(mp.num_orig_edges(), 2);
        assert!(mp.is_self_loop(2));
        assert_eq!(mp.self_loop_edge(1), 3);
        assert_eq!(mp.orig_edge_id(0), Some(0));
        assert_eq!(mp.orig_edge_id(4), None);
    }

    #[test]
    fn in_out_edges() {
        let mp = MpGraph::new(&path_graph());
        // node 1: in = edge 0 (0->1) + self-loop 3
        let mut ins: Vec<u32> = mp.in_edges(1).to_vec();
        ins.sort_unstable();
        assert_eq!(ins, vec![0, 3]);
        let mut outs: Vec<u32> = mp.out_edges(1).to_vec();
        outs.sort_unstable();
        assert_eq!(outs, vec![1, 3]);
        assert_eq!(mp.in_degree(0), 1);
        assert_eq!(mp.in_degree(2), 2);
    }

    #[test]
    fn gcn_norm_symmetric() {
        let mp = MpGraph::new(&path_graph());
        let norm = mp.gcn_norm();
        // deg_in with self loops: [1, 2, 2]
        let expect0 = 1.0 / (1.0f32 * 2.0).sqrt(); // edge 0->1
        assert!((norm[0] - expect0).abs() < 1e-6);
        let self0 = 1.0 / (1.0f32 * 1.0).sqrt();
        assert!((norm[2] - self0).abs() < 1e-6);
    }
}
