//! `L`-hop computation-subgraph extraction.
//!
//! In an `L`-layer GNN the prediction at a node depends only on nodes with a
//! directed path of length ≤ `L` to it. Explaining a node-classification
//! prediction therefore runs on this subgraph — exactly what PyG's
//! `k_hop_subgraph` does for the Python baselines.

use crate::graph::Graph;

/// The result of [`khop_subgraph`]: the induced subgraph plus the mappings
/// back to the original graph.
#[derive(Debug, Clone)]
pub struct KhopSubgraph {
    /// The induced subgraph (features and node labels carried over).
    pub graph: Graph,
    /// `nodes[new_id] = old_id`.
    pub nodes: Vec<usize>,
    /// `edge_origin[new_edge_id] = old_edge_id`.
    pub edge_origin: Vec<usize>,
    /// The target node's id within `graph`.
    pub target: usize,
}

impl KhopSubgraph {
    /// Maps a subgraph node id back to the original graph.
    pub fn original_node(&self, new_id: usize) -> usize {
        self.nodes[new_id]
    }

    /// Maps a subgraph edge id back to the original graph.
    pub fn original_edge(&self, new_edge_id: usize) -> usize {
        self.edge_origin[new_edge_id]
    }
}

/// Extracts the `hops`-hop in-neighbourhood of `target` as an induced
/// subgraph.
///
/// Nodes kept: every node with a directed path of length ≤ `hops` **to** the
/// target (information flows along edge direction). Edges kept: all stored
/// edges between kept nodes.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn khop_subgraph(g: &Graph, target: usize, hops: usize) -> KhopSubgraph {
    assert!(target < g.num_nodes(), "khop_subgraph: target out of range");

    // Reverse adjacency: for each node, its in-neighbours.
    let mut in_nbrs: Vec<Vec<usize>> = vec![Vec::new(); g.num_nodes()];
    for &(s, d) in g.edges() {
        in_nbrs[d as usize].push(s as usize);
    }

    let mut dist = vec![usize::MAX; g.num_nodes()];
    dist[target] = 0;
    let mut frontier = vec![target];
    for d in 1..=hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in &in_nbrs[v] {
                if dist[u] == usize::MAX {
                    dist[u] = d;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }

    let nodes: Vec<usize> = (0..g.num_nodes())
        .filter(|&v| dist[v] != usize::MAX)
        .collect();
    let mut new_id = vec![usize::MAX; g.num_nodes()];
    for (i, &v) in nodes.iter().enumerate() {
        new_id[v] = i;
    }

    let feat_dim = g.feat_dim();
    let mut b = Graph::builder(nodes.len(), feat_dim);
    for (i, &v) in nodes.iter().enumerate() {
        b.node_features(i, g.feature_row(v));
    }
    let mut edge_origin = Vec::new();
    for (eid, &(s, d)) in g.edges().iter().enumerate() {
        let (s, d) = (s as usize, d as usize);
        if new_id[s] != usize::MAX && new_id[d] != usize::MAX {
            b.edge(new_id[s], new_id[d]);
            edge_origin.push(eid);
        }
    }
    if let Some(labels) = g.node_labels() {
        b.node_labels(nodes.iter().map(|&v| labels[v]).collect());
    }
    if let Some(gl) = g.graph_label() {
        b.graph_label(gl);
    }

    KhopSubgraph {
        graph: b.build(),
        target: new_id[target],
        nodes,
        edge_origin,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Chain 0 -> 1 -> 2 -> 3 -> 4 with an isolated node 5.
    fn chain() -> Graph {
        let mut b = Graph::builder(6, 2);
        for i in 0..4 {
            b.edge(i, i + 1);
        }
        for v in 0..6 {
            b.node_features(v, &[v as f32, 0.0]);
        }
        b.node_labels(vec![0, 1, 0, 1, 0, 1]);
        b.build()
    }

    #[test]
    fn two_hop_around_middle() {
        let sub = khop_subgraph(&chain(), 3, 2);
        // Nodes with directed path of length <= 2 to node 3: {1, 2, 3}.
        assert_eq!(sub.nodes, vec![1, 2, 3]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.original_node(sub.target), 3);
        // Features and labels carried over.
        assert_eq!(sub.graph.feature_row(0), &[1.0, 0.0]);
        assert_eq!(sub.graph.node_labels().unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn edge_origin_maps_back() {
        let g = chain();
        let sub = khop_subgraph(&g, 3, 2);
        for (new_e, &(s, d)) in sub.graph.edges().iter().enumerate() {
            let old = g.edges()[sub.original_edge(new_e)];
            assert_eq!(old.0 as usize, sub.original_node(s as usize));
            assert_eq!(old.1 as usize, sub.original_node(d as usize));
        }
    }

    #[test]
    fn hop_zero_is_just_the_target() {
        let sub = khop_subgraph(&chain(), 2, 0);
        assert_eq!(sub.graph.num_nodes(), 1);
        assert_eq!(sub.graph.num_edges(), 0);
        assert_eq!(sub.target, 0);
    }

    #[test]
    fn isolated_nodes_are_dropped() {
        let sub = khop_subgraph(&chain(), 4, 5);
        assert!(!sub.nodes.contains(&5));
        assert_eq!(sub.nodes.len(), 5);
    }
}
