//! Message-flow enumeration and the flow-incidence index.
//!
//! A *message flow* in an `L`-layer GNN is a sequence of `L` layer edges
//! `(e^1, …, e^L)` with `dst(e^l) = src(e^{l+1})` (§III of the paper). For
//! node-classification explanations all flows end at the target node; for
//! graph classification every `L`-step path is a flow (the readout pools all
//! nodes).
//!
//! [`FlowIndex::build`] enumerates the flows deterministically and
//! constructs, per layer, the sparse binary incidence matrix
//! `I_l ∈ {0,1}^{|E| × |F|}` of Eq. 7 with `I_l[e, f] = 1` iff flow `f`
//! traverses layer edge `e` at layer `l`.

use std::fmt;
use std::sync::Arc;

use revelio_tensor::BinCsr;

use crate::mp::MpGraph;

/// What the explained prediction is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Node classification: explain the prediction at this node; flows end
    /// there.
    Node(usize),
    /// Graph classification: the readout pools every node, so all `L`-step
    /// paths are flows.
    Graph,
}

/// Error raised when flow enumeration would exceed the configured cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyFlows {
    /// The exact (or saturated) number of flows the graph contains.
    pub found: u64,
    /// The configured cap.
    pub max: usize,
}

impl fmt::Display for TooManyFlows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow enumeration would produce {} flows, exceeding the cap of {}",
            self.found, self.max
        )
    }
}

impl std::error::Error for TooManyFlows {}

/// Error raised by [`FlowIndex::from_parts`] when a serialised layer-edge
/// table cannot be a valid flow enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowPartsError {
    /// A flow index needs at least one layer.
    ZeroLayers,
    /// The table length is not a whole number of flows.
    RaggedTable {
        /// Entries in the table.
        entries: usize,
        /// Declared layer count.
        layers: usize,
    },
    /// The table references an edge outside the incidence row range.
    EdgeOutOfRange {
        /// The offending layer-edge id.
        edge: u32,
        /// The declared layer-edge count.
        layer_edge_count: usize,
    },
}

impl fmt::Display for FlowPartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowPartsError::ZeroLayers => write!(f, "a flow index needs at least one layer"),
            FlowPartsError::RaggedTable { entries, layers } => write!(
                f,
                "flow edge table of {entries} entries is not a multiple of {layers} layers"
            ),
            FlowPartsError::EdgeOutOfRange {
                edge,
                layer_edge_count,
            } => write!(
                f,
                "flow edge id {edge} out of range for {layer_edge_count} layer edges"
            ),
        }
    }
}

impl std::error::Error for FlowPartsError {}

/// Counts the message flows of an `L`-layer GNN on `mp` without enumerating
/// them (saturating at `u64::MAX`).
pub fn count_flows(mp: &MpGraph, layers: usize, target: Target) -> u64 {
    let suffix = suffix_counts(mp, layers, target);
    (0..mp.num_nodes())
        .map(|u| suffix[0][u])
        .fold(0u64, u64::saturating_add)
}

/// `suffix[l][u]` = number of `L - l`-edge paths starting at `u` that use
/// layers `l+1..=L` and satisfy the target constraint.
fn suffix_counts(mp: &MpGraph, layers: usize, target: Target) -> Vec<Vec<u64>> {
    let n = mp.num_nodes();
    let mut suffix = vec![vec![0u64; n]; layers + 1];
    match target {
        Target::Node(t) => suffix[layers][t] = 1,
        Target::Graph => suffix[layers].iter_mut().for_each(|v| *v = 1),
    }
    for l in (0..layers).rev() {
        for u in 0..n {
            let mut acc = 0u64;
            for &e in mp.out_edges(u) {
                acc = acc.saturating_add(suffix[l + 1][mp.dst()[e as usize]]);
            }
            suffix[l][u] = acc;
        }
    }
    suffix
}

/// All message flows of an instance plus the per-layer incidence matrices.
///
/// # Example
///
/// ```
/// use revelio_graph::{FlowIndex, Graph, MpGraph, Target};
///
/// // 0 -> 1; the message-passing view adds self-loops.
/// let mut b = Graph::builder(2, 1);
/// b.edge(0, 1);
/// let mp = MpGraph::new(&b.build());
///
/// let idx = FlowIndex::build(&mp, 2, Target::Node(1), 1000).unwrap();
/// // 2-layer flows ending at node 1: 0→1→1, 0→0→1, 1→1→1.
/// assert_eq!(idx.num_flows(), 3);
/// let mut strings: Vec<String> =
///     (0..3).map(|f| idx.flow_string(&mp, f)).collect();
/// strings.sort();
/// assert_eq!(strings, vec!["0→0→1", "0→1→1", "1→1→1"]);
/// ```
#[derive(Debug, Clone)]
pub struct FlowIndex {
    num_layers: usize,
    num_flows: usize,
    /// Flattened `[num_flows, num_layers]`: entry `(f, l)` is the layer-edge
    /// id flow `f` traverses at layer `l + 1`.
    flow_edges: Vec<u32>,
    /// Per layer, `|E| × |F|` binary incidence (Eq. 7).
    incidence: Vec<Arc<BinCsr>>,
}

/// The result of [`FlowIndex::build_capped`]: the (possibly truncated)
/// index plus how much was dropped to stay under the cap.
#[derive(Debug, Clone)]
pub struct CappedFlows {
    /// The enumerated prefix of the flow set (at most `max_flows` flows).
    pub index: FlowIndex,
    /// The exact (or saturated) number of flows the instance contains.
    pub found: u64,
    /// How many flows were dropped (`found - kept`); `0` means the index
    /// is complete.
    pub dropped: u64,
}

impl FlowIndex {
    /// Enumerates all message flows deterministically (start nodes in
    /// ascending order, out-edges in layer-edge-id order).
    ///
    /// # Errors
    ///
    /// Returns [`TooManyFlows`] if the graph contains more than `max_flows`
    /// flows — an explicit failure rather than silent truncation.
    pub fn build(
        mp: &MpGraph,
        layers: usize,
        target: Target,
        max_flows: usize,
    ) -> Result<FlowIndex, TooManyFlows> {
        let (suffix, total) = prepare(mp, layers, target);
        if total > max_flows as u64 {
            return Err(TooManyFlows {
                found: total,
                max: max_flows,
            });
        }
        Ok(Self::build_prefix(mp, layers, &suffix, total as usize))
    }

    /// Enumerates at most `max_flows` flows, truncating instead of failing.
    ///
    /// The kept flows are the deterministic enumeration prefix (the same
    /// order [`FlowIndex::build`] would produce), so the result is
    /// reproducible and a strict subset of the full flow set. Used by the
    /// serving runtime's graceful-degradation path: an oversized instance
    /// yields a degraded explanation over the kept flows rather than an
    /// error.
    pub fn build_capped(
        mp: &MpGraph,
        layers: usize,
        target: Target,
        max_flows: usize,
    ) -> CappedFlows {
        let (suffix, total) = prepare(mp, layers, target);
        let kept = total.min(max_flows as u64) as usize;
        CappedFlows {
            index: Self::build_prefix(mp, layers, &suffix, kept),
            found: total,
            dropped: total - kept as u64,
        }
    }

    /// Enumerates the first `keep` flows (in deterministic order) and builds
    /// their incidence matrices.
    fn build_prefix(mp: &MpGraph, layers: usize, suffix: &[Vec<u64>], keep: usize) -> FlowIndex {
        let mut flow_edges = Vec::with_capacity(keep * layers);
        let mut path = vec![0u32; layers];
        for start in 0..mp.num_nodes() {
            if flow_edges.len() >= keep * layers {
                break;
            }
            if suffix[0][start] > 0 {
                enumerate_from(
                    mp,
                    layers,
                    suffix,
                    start,
                    0,
                    &mut path,
                    &mut flow_edges,
                    keep,
                );
            }
        }
        debug_assert_eq!(flow_edges.len(), keep * layers);

        let ne = mp.layer_edge_count();
        let mut incidence = Vec::with_capacity(layers);
        for l in 0..layers {
            let mut rows: Vec<Vec<u32>> = vec![Vec::new(); ne];
            for f in 0..keep {
                rows[flow_edges[f * layers + l] as usize].push(f as u32);
            }
            incidence.push(Arc::new(BinCsr::from_rows(ne, keep, &rows)));
        }

        FlowIndex {
            num_layers: layers,
            num_flows: keep,
            flow_edges,
            incidence,
        }
    }

    /// Rebuilds an index from a previously serialised layer-edge table
    /// (see [`FlowIndex::flow_edges`]), reconstructing the per-layer
    /// incidence matrices — they are a pure function of the table, so
    /// persistence layers store only the table.
    ///
    /// # Errors
    ///
    /// Returns [`FlowPartsError`] when the table is not a whole number of
    /// flows, references an edge at or above `layer_edge_count`, or
    /// `layers` is zero.
    pub fn from_parts(
        layers: usize,
        layer_edge_count: usize,
        flow_edges: Vec<u32>,
    ) -> Result<FlowIndex, FlowPartsError> {
        if layers == 0 {
            return Err(FlowPartsError::ZeroLayers);
        }
        if !flow_edges.len().is_multiple_of(layers) {
            return Err(FlowPartsError::RaggedTable {
                entries: flow_edges.len(),
                layers,
            });
        }
        if let Some(&e) = flow_edges.iter().find(|&&e| e as usize >= layer_edge_count) {
            return Err(FlowPartsError::EdgeOutOfRange {
                edge: e,
                layer_edge_count,
            });
        }
        let keep = flow_edges.len() / layers;
        let mut incidence = Vec::with_capacity(layers);
        for l in 0..layers {
            let mut rows: Vec<Vec<u32>> = vec![Vec::new(); layer_edge_count];
            for f in 0..keep {
                rows[flow_edges[f * layers + l] as usize].push(f as u32);
            }
            incidence.push(Arc::new(BinCsr::from_rows(layer_edge_count, keep, &rows)));
        }
        Ok(FlowIndex {
            num_layers: layers,
            num_flows: keep,
            flow_edges,
            incidence,
        })
    }

    /// The flattened `[num_flows, num_layers]` layer-edge table — entry
    /// `(f, l)` is the layer-edge id flow `f` traverses at layer `l + 1`.
    /// Together with [`FlowIndex::layer_edge_count`] this is sufficient to
    /// reconstruct the index via [`FlowIndex::from_parts`].
    pub fn flow_edges(&self) -> &[u32] {
        &self.flow_edges
    }

    /// The layer-edge count `|E|` the incidence matrices span (their row
    /// dimension).
    pub fn layer_edge_count(&self) -> usize {
        self.incidence.first().map_or(0, |i| i.rows())
    }

    /// Number of GNN layers `L`.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of enumerated flows `|F|`.
    pub fn num_flows(&self) -> usize {
        self.num_flows
    }

    /// The layer-edge ids of flow `f`, ordered layer `1..=L`.
    pub fn flow(&self, f: usize) -> &[u32] {
        &self.flow_edges[f * self.num_layers..(f + 1) * self.num_layers]
    }

    /// The `L + 1` node ids flow `f` visits, in order.
    pub fn flow_nodes(&self, mp: &MpGraph, f: usize) -> Vec<usize> {
        let edges = self.flow(f);
        let mut nodes = Vec::with_capacity(self.num_layers + 1);
        nodes.push(mp.src()[edges[0] as usize]);
        for &e in edges {
            nodes.push(mp.dst()[e as usize]);
        }
        nodes
    }

    /// Formats flow `f` as `i→j→…→k` (the paper's Table VI/VII style).
    pub fn flow_string(&self, mp: &MpGraph, f: usize) -> String {
        self.flow_nodes(mp, f)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("→")
    }

    /// The incidence matrix `I_l` for layer `l` (0-based): `|E| × |F|`,
    /// shared via `Arc` so it can be captured by autodiff ops and reused
    /// across threads through the serving runtime's artifact cache.
    pub fn incidence(&self, layer: usize) -> &Arc<BinCsr> {
        &self.incidence[layer]
    }

    /// The flows traversing layer edge `e` at 0-based layer `l` — the set
    /// `F_{?{l}ij*}` of Eq. 3.
    pub fn flows_through(&self, layer: usize, edge: usize) -> &[u32] {
        self.incidence[layer].row(edge)
    }
}

/// Shared preamble of [`FlowIndex::build`] / [`FlowIndex::build_capped`]:
/// validates inputs and counts flows.
fn prepare(mp: &MpGraph, layers: usize, target: Target) -> (Vec<Vec<u64>>, u64) {
    assert!(layers >= 1, "a GNN must have at least one layer");
    if let Target::Node(t) = target {
        assert!(t < mp.num_nodes(), "target node out of range");
    }
    let suffix = suffix_counts(mp, layers, target);
    let total = (0..mp.num_nodes())
        .map(|u| suffix[0][u])
        .fold(0u64, u64::saturating_add);
    (suffix, total)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_from(
    mp: &MpGraph,
    layers: usize,
    suffix: &[Vec<u64>],
    node: usize,
    depth: usize,
    path: &mut [u32],
    out: &mut Vec<u32>,
    keep: usize,
) {
    if out.len() >= keep * layers {
        return;
    }
    if depth == layers {
        out.extend_from_slice(path);
        return;
    }
    for &e in mp.out_edges(node) {
        let next = mp.dst()[e as usize];
        if suffix[depth + 1][next] > 0 {
            path[depth] = e;
            enumerate_from(mp, layers, suffix, next, depth + 1, path, out, keep);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// 0 -> 1 -> 2 plus self-loops from the MP view.
    fn path_mp() -> MpGraph {
        let mut b = Graph::builder(3, 1);
        b.edge(0, 1).edge(1, 2);
        MpGraph::new(&b.build())
    }

    #[test]
    fn counts_match_enumeration_node_target() {
        let mp = path_mp();
        for layers in 1..=4 {
            let count = count_flows(&mp, layers, Target::Node(2));
            let idx = FlowIndex::build(&mp, layers, Target::Node(2), 10_000).unwrap();
            assert_eq!(count as usize, idx.num_flows(), "layers={layers}");
        }
    }

    #[test]
    fn counts_match_enumeration_graph_target() {
        let mp = path_mp();
        let count = count_flows(&mp, 2, Target::Graph);
        let idx = FlowIndex::build(&mp, 2, Target::Graph, 10_000).unwrap();
        assert_eq!(count as usize, idx.num_flows());
    }

    #[test]
    fn two_layer_flows_to_node2_are_exactly_the_paths() {
        let mp = path_mp();
        let idx = FlowIndex::build(&mp, 2, Target::Node(2), 10_000).unwrap();
        let mut strings: Vec<String> = (0..idx.num_flows())
            .map(|f| idx.flow_string(&mp, f))
            .collect();
        strings.sort();
        // Paths of 2 layer-edges ending at node 2:
        // 0→1→2, 1→1→2 (self then edge), 1→2→2 (edge then self), 2→2→2.
        assert_eq!(strings, vec!["0→1→2", "1→1→2", "1→2→2", "2→2→2"]);
    }

    #[test]
    fn all_flows_end_at_target() {
        let mp = path_mp();
        let idx = FlowIndex::build(&mp, 3, Target::Node(2), 10_000).unwrap();
        for f in 0..idx.num_flows() {
            assert_eq!(*idx.flow_nodes(&mp, f).last().unwrap(), 2);
        }
    }

    #[test]
    fn incidence_is_consistent_with_flows() {
        let mp = path_mp();
        let idx = FlowIndex::build(&mp, 2, Target::Graph, 10_000).unwrap();
        for l in 0..2 {
            let inc = idx.incidence(l);
            assert_eq!(inc.rows(), mp.layer_edge_count());
            assert_eq!(inc.cols(), idx.num_flows());
            let mut total = 0;
            for e in 0..inc.rows() {
                for &f in inc.row(e) {
                    assert_eq!(idx.flow(f as usize)[l], e as u32);
                    total += 1;
                }
            }
            // Every flow appears exactly once per layer.
            assert_eq!(total, idx.num_flows());
        }
    }

    #[test]
    fn cap_is_enforced() {
        let mp = path_mp();
        let err = FlowIndex::build(&mp, 3, Target::Graph, 2).unwrap_err();
        assert!(err.found > 2);
        assert_eq!(err.max, 2);
    }

    #[test]
    fn capped_build_keeps_deterministic_prefix() {
        let mp = path_mp();
        let full = FlowIndex::build(&mp, 3, Target::Graph, 10_000).unwrap();
        let capped = FlowIndex::build_capped(&mp, 3, Target::Graph, 4);
        assert_eq!(capped.found, full.num_flows() as u64);
        assert_eq!(capped.dropped, capped.found - 4);
        assert_eq!(capped.index.num_flows(), 4);
        // The kept flows are exactly the first 4 of the full enumeration.
        for f in 0..4 {
            assert_eq!(capped.index.flow(f), full.flow(f));
        }
        // Incidence stays consistent on the truncated set.
        for l in 0..3 {
            let inc = capped.index.incidence(l);
            assert_eq!(inc.cols(), 4);
            let nnz: usize = (0..inc.rows()).map(|e| inc.row(e).len()).sum();
            assert_eq!(nnz, 4);
        }
    }

    #[test]
    fn capped_build_below_cap_is_complete() {
        let mp = path_mp();
        let full = FlowIndex::build(&mp, 2, Target::Node(2), 10_000).unwrap();
        let capped = FlowIndex::build_capped(&mp, 2, Target::Node(2), 10_000);
        assert_eq!(capped.dropped, 0);
        assert_eq!(capped.index.num_flows(), full.num_flows());
    }

    #[test]
    fn from_parts_reconstructs_an_identical_index() {
        let mp = path_mp();
        let built = FlowIndex::build(&mp, 2, Target::Node(2), 10_000).unwrap();
        let rebuilt = FlowIndex::from_parts(
            built.num_layers(),
            built.layer_edge_count(),
            built.flow_edges().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.num_flows(), built.num_flows());
        assert_eq!(rebuilt.flow_edges(), built.flow_edges());
        for l in 0..built.num_layers() {
            let (a, b) = (built.incidence(l), rebuilt.incidence(l));
            assert_eq!(a.rows(), b.rows());
            assert_eq!(a.cols(), b.cols());
            for e in 0..a.rows() {
                assert_eq!(a.row(e), b.row(e));
            }
        }
    }

    #[test]
    fn from_parts_rejects_invalid_tables() {
        assert_eq!(
            FlowIndex::from_parts(0, 4, vec![]).unwrap_err(),
            FlowPartsError::ZeroLayers
        );
        assert_eq!(
            FlowIndex::from_parts(2, 4, vec![0, 1, 2]).unwrap_err(),
            FlowPartsError::RaggedTable {
                entries: 3,
                layers: 2
            }
        );
        assert_eq!(
            FlowIndex::from_parts(2, 4, vec![0, 4]).unwrap_err(),
            FlowPartsError::EdgeOutOfRange {
                edge: 4,
                layer_edge_count: 4
            }
        );
    }

    #[test]
    fn flows_through_matches_incidence_rows() {
        let mp = path_mp();
        let idx = FlowIndex::build(&mp, 2, Target::Node(2), 10_000).unwrap();
        // Layer 2 (index 1) edge 1 (1->2): flows 0→1→2 and 1→1→2 use it.
        let through = idx.flows_through(1, 1);
        assert_eq!(through.len(), 2);
    }
}
