//! Graph containers and message-flow machinery for the REVELIO reproduction.
//!
//! This crate provides:
//!
//! * [`Graph`] — a directed graph with node features and (node or graph)
//!   labels, the input representation for every dataset in the paper;
//! * [`MpGraph`] — the *message-passing view* of a graph: the self-loop
//!   augmented layer-edge set shared by all GNN layers, with gather/scatter
//!   index arrays ready for the tensor engine;
//! * [`FlowIndex`] — enumeration of all **message flows** (length-`L`
//!   layer-edge paths, §III of the paper) together with the sparse
//!   flow-incidence matrices `I` of Eq. 7;
//! * [`khop_subgraph`] — extraction of the `L`-hop computation subgraph
//!   around a target node, on which node-classification explanations run.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod flows;
mod graph;
mod mp;
mod subgraph;

pub use flows::{count_flows, CappedFlows, FlowIndex, FlowPartsError, Target, TooManyFlows};
pub use graph::{Graph, GraphBuilder};
pub use mp::MpGraph;
pub use subgraph::{khop_subgraph, KhopSubgraph};
