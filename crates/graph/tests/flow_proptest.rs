//! Property-based invariants of flow enumeration and subgraph extraction on
//! random graphs.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use revelio_graph::{count_flows, khop_subgraph, FlowIndex, Graph, MpGraph, Target};

/// A random simple directed graph with `n` nodes and up to `m` edges.
fn random_graph(n: usize, pairs: &[(usize, usize)]) -> Graph {
    let mut b = Graph::builder(n, 1);
    for &(u, v) in pairs {
        let (u, v) = (u % n, v % n);
        if u != v && !b.has_edge(u, v) {
            b.edge(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enumeration_matches_count(
        n in 2usize..8,
        pairs in prop::collection::vec((0usize..8, 0usize..8), 0..20),
        layers in 1usize..4,
    ) {
        let g = random_graph(n, &pairs);
        let mp = MpGraph::new(&g);
        for target in [Target::Node(0), Target::Graph] {
            let count = count_flows(&mp, layers, target);
            let idx = FlowIndex::build(&mp, layers, target, 1_000_000).unwrap();
            prop_assert_eq!(count as usize, idx.num_flows());
        }
    }

    #[test]
    fn flows_are_valid_paths(
        n in 2usize..7,
        pairs in prop::collection::vec((0usize..7, 0usize..7), 0..15),
        layers in 1usize..4,
    ) {
        let g = random_graph(n, &pairs);
        let mp = MpGraph::new(&g);
        let target = (pairs.len() + n) % n;
        let idx = FlowIndex::build(&mp, layers, Target::Node(target), 1_000_000).unwrap();
        for f in 0..idx.num_flows() {
            let edges = idx.flow(f);
            prop_assert_eq!(edges.len(), layers);
            // Consecutive edges chain: dst(e_l) == src(e_{l+1}).
            for w in edges.windows(2) {
                prop_assert_eq!(mp.dst()[w[0] as usize], mp.src()[w[1] as usize]);
            }
            // Terminates at the target.
            prop_assert_eq!(mp.dst()[edges[layers - 1] as usize], target);
        }
    }

    #[test]
    fn incidence_rows_partition_flows(
        n in 2usize..6,
        pairs in prop::collection::vec((0usize..6, 0usize..6), 0..12),
    ) {
        let g = random_graph(n, &pairs);
        let mp = MpGraph::new(&g);
        let idx = FlowIndex::build(&mp, 3, Target::Graph, 1_000_000).unwrap();
        for l in 0..3 {
            let mut seen = vec![false; idx.num_flows()];
            for e in 0..mp.layer_edge_count() {
                for &f in idx.flows_through(l, e) {
                    prop_assert!(!seen[f as usize], "flow listed twice in one layer");
                    seen[f as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "flow missing from a layer");
        }
    }

    #[test]
    fn khop_subgraph_nodes_reach_target(
        n in 2usize..10,
        pairs in prop::collection::vec((0usize..10, 0usize..10), 0..25),
        hops in 0usize..4,
    ) {
        let g = random_graph(n, &pairs);
        let target = 0usize;
        let sub = khop_subgraph(&g, target, hops);
        // The target survives.
        prop_assert_eq!(sub.original_node(sub.target), target);
        // Every kept node has a directed path of length <= hops to target
        // in the subgraph itself (BFS backwards from the target).
        let sn = sub.graph.num_nodes();
        let mut dist = vec![usize::MAX; sn];
        dist[sub.target] = 0;
        let mut frontier = vec![sub.target];
        for d in 1..=hops {
            let mut next = Vec::new();
            for &v in &frontier {
                for (s, t) in sub.graph.edges() {
                    if *t as usize == v && dist[*s as usize] == usize::MAX {
                        dist[*s as usize] = d;
                        next.push(*s as usize);
                    }
                }
            }
            frontier = next;
        }
        for &d in dist.iter().take(sn) {
            prop_assert!(d != usize::MAX, "unreachable node kept in subgraph");
        }
    }

    #[test]
    fn mp_graph_degrees_consistent(
        n in 1usize..8,
        pairs in prop::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let g = random_graph(n, &pairs);
        let mp = MpGraph::new(&g);
        prop_assert_eq!(mp.layer_edge_count(), g.num_edges() + n);
        let total_in: usize = (0..n).map(|v| mp.in_degree(v)).sum();
        prop_assert_eq!(total_in, mp.layer_edge_count());
        // Norms are positive and finite.
        for w in mp.gcn_norm() {
            prop_assert!(w > 0.0 && w.is_finite());
        }
    }
}
