//! Graph classification on molecule-like graphs: train a GIN on the
//! simulated MUTAG dataset, then compare all three flow-based explainers
//! (GNN-LRP, FlowX, REVELIO) on how well their top edges recover the
//! planted NO₂ motif — the drug-discovery use case from the paper's intro.
//!
//! ```text
//! cargo run --release --example molecule_motifs
//! ```

use std::collections::HashSet;

use revelio::prelude::*;

fn main() {
    let data = revelio::datasets::mutag_sim(0);
    println!(
        "MUTAG-sim: {} molecules, avg {:.1} atoms / {:.1} bonds",
        data.graphs.len(),
        data.avg_nodes(),
        data.avg_edges()
    );

    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gin,
        Task::GraphClassification,
        7,
        2,
        11,
    ));
    train_graph_classifier(
        &model,
        &data.graphs,
        &data.split.train,
        &TrainConfig {
            epochs: 30,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let acc = revelio::gnn::evaluate_graph_accuracy(&model, &data.graphs, &data.split.test);
    println!("test accuracy: {:.1}%", acc * 100.0);

    // Pick a correctly-classified mutagenic molecule with a planted motif.
    let target_graph = data
        .split
        .test
        .iter()
        .copied()
        .find(|&gi| {
            data.ground_truth_for(gi).is_some()
                && model.predict_class(&data.graphs[gi], Target::Graph)
                    == data.graphs[gi].graph_label().expect("label")
        })
        .expect("a correctly classified mutagenic molecule");
    let g = &data.graphs[target_graph];
    let gt: HashSet<usize> = data
        .ground_truth_for(target_graph)
        .expect("motif")
        .iter()
        .copied()
        .collect();
    println!(
        "\nexplaining molecule #{target_graph}: {} atoms, NO2 motif spans {} directed bonds",
        g.num_nodes(),
        gt.len()
    );

    let instance = Instance::for_prediction(&model, g.clone(), Target::Graph);
    let k = gt.len();

    let explainers: Vec<Box<dyn Explainer>> = vec![
        Box::new(GnnLrp::default()),
        Box::new(FlowX::factual()),
        Box::new(Revelio::new(RevelioConfig {
            epochs: 200,
            ..Default::default()
        })),
    ];

    println!("\nmethod     motif bonds in top-{k}   top flow");
    for explainer in &explainers {
        let exp = explainer.explain(&model, &instance);
        let hits = exp.top_edges(k).iter().filter(|e| gt.contains(e)).count();
        let top_flow = exp
            .flows
            .as_ref()
            .map(|fs| {
                let (f, s) = fs.top_k(1)[0];
                format!("{} ({s:+.4})", fs.index.flow_string(&instance.mp, f))
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {hits:>3} / {:<3}              {top_flow}",
            explainer.name(),
            gt.len()
        );
    }

    println!("\natom legend: the motif is a nitrogen (type 1) bonded to two");
    println!("oxygens (type 2) and a ring carbon — the mutagenicity signal.");
}
