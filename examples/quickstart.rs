//! Quickstart: train a GCN on the Tree-Cycles benchmark, explain one
//! prediction with REVELIO, and print the most important message flows.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use revelio::prelude::*;

fn main() {
    // 1. Generate the Tree-Cycles dataset (Table III) and train a 3-layer
    //    GCN on it.
    let data = revelio::datasets::tree_cycles(0);
    println!(
        "Tree-Cycles: {} nodes, {} edges, {} classes",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.num_classes
    );

    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        data.graph.feat_dim(),
        data.num_classes,
        0,
    ));
    train_node_classifier(
        &model,
        &data.graph,
        &data.split.train,
        &TrainConfig {
            epochs: 120,
            ..Default::default()
        },
    );
    let acc = revelio::gnn::evaluate_node_accuracy(&model, &data.graph, &data.split.test);
    println!("test accuracy: {:.1}%", acc * 100.0);

    // 2. Pick a motif node (part of a planted hexagon) and extract its
    //    3-hop computation subgraph.
    let target = 511; // first cycle-motif node
    let sub = khop_subgraph(&data.graph, target, model.num_layers());
    let instance = Instance::for_prediction(&model, sub.graph.clone(), Target::Node(sub.target));
    println!(
        "\nexplaining node {target}: predicted class {} (p = {:.3}), subgraph has {} nodes / {} edges",
        instance.class,
        instance.orig_prob(),
        sub.graph.num_nodes(),
        sub.graph.num_edges()
    );

    // 3. Run REVELIO.
    let revelio = Revelio::new(RevelioConfig {
        epochs: 200,
        alpha: 0.05,
        ..Default::default()
    });
    let explanation = revelio.explain(&model, &instance);

    // 4. Report the top message flows (in original node ids).
    let flows = explanation
        .flows
        .as_ref()
        .expect("REVELIO returns flow scores");
    println!("\ntop-10 message flows (original node ids):");
    for (rank, (f, score)) in flows.top_k(10).into_iter().enumerate() {
        let path: Vec<String> = flows
            .index
            .flow_nodes(&instance.mp, f)
            .into_iter()
            .map(|v| sub.original_node(v).to_string())
            .collect();
        println!(
            "  {:>2}. {}  (score {score:+.3})",
            rank + 1,
            path.join(" → ")
        );
    }

    // 5. And the top edges, checked against the planted motif.
    let gt = data.ground_truth_for(target).expect("motif ground truth");
    let gt: std::collections::HashSet<usize> = gt.iter().copied().collect();
    println!("\ntop-8 edges vs motif ground truth:");
    for e in explanation.top_edges(8) {
        let (s, d) = sub.graph.edges()[e];
        let orig = sub.original_edge(e);
        let mark = if gt.contains(&orig) { "motif" } else { "     " };
        println!(
            "  {} → {}  [{mark}]  score {:.3}",
            sub.original_node(s as usize),
            sub.original_node(d as usize),
            explanation.edge_scores[e]
        );
    }
}
