//! Recommendation knowledge graph — the paper's intro motivates flow
//! explanations with "understanding the decision-making processes and user
//! behaviors in a recommender knowledge graph".
//!
//! We build a user–item–category knowledge graph where a user's affinity
//! for a category propagates through purchased items. A GCN predicts each
//! user's preferred category; REVELIO then shows *which user → item →
//! category chains* carried the evidence, which an edge-level explanation
//! cannot disambiguate (Fig. 1 of the paper).
//!
//! ```text
//! cargo run --release --example recommender_flows
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use revelio::prelude::*;

const USERS: usize = 30;
const ITEMS: usize = 40;
const CATEGORIES: usize = 3;
const FEATS: usize = 4;

fn node_name(v: usize) -> String {
    if v < USERS {
        format!("user{v}")
    } else if v < USERS + ITEMS {
        format!("item{}", v - USERS)
    } else {
        format!("cat{}", v - USERS - ITEMS)
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);
    let n = USERS + ITEMS + CATEGORIES;
    let mut b = Graph::builder(n, FEATS);

    // Each item belongs to one category.
    let item_cat: Vec<usize> = (0..ITEMS).map(|_| rng.gen_range(0..CATEGORIES)).collect();
    for (i, &c) in item_cat.iter().enumerate() {
        b.undirected_edge(USERS + i, USERS + ITEMS + c);
    }
    // Each user prefers a category and mostly buys from it.
    let user_pref: Vec<usize> = (0..USERS).map(|_| rng.gen_range(0..CATEGORIES)).collect();
    for (u, &pref) in user_pref.iter().enumerate() {
        let purchases = rng.gen_range(3..6);
        let mut bought = std::collections::HashSet::new();
        while bought.len() < purchases {
            let in_pref = rng.gen_bool(0.8);
            let candidates: Vec<usize> = (0..ITEMS)
                .filter(|&i| (item_cat[i] == pref) == in_pref)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let item = candidates[rng.gen_range(0..candidates.len())];
            if bought.insert(item) {
                b.undirected_edge(u, USERS + item);
            }
        }
    }

    // Features: node type one-hot-ish + noise (labels NOT in features, so
    // the model must reason through the graph).
    for v in 0..n {
        let ty = if v < USERS {
            0.0
        } else if v < USERS + ITEMS {
            1.0
        } else {
            2.0
        };
        b.node_features(v, &[ty, rng.gen_range(0.0..1.0), 1.0, 0.0]);
    }

    // Labels: users get their preferred category; items their category;
    // category nodes their own id.
    let mut labels = vec![0usize; n];
    labels[..USERS].copy_from_slice(&user_pref);
    for (i, &c) in item_cat.iter().enumerate() {
        labels[USERS + i] = c;
    }
    for c in 0..CATEGORIES {
        labels[USERS + ITEMS + c] = c;
    }
    b.node_labels(labels.clone());
    let graph = b.build();
    println!(
        "knowledge graph: {USERS} users, {ITEMS} items, {CATEGORIES} categories, {} edges",
        graph.num_edges()
    );

    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        FEATS,
        CATEGORIES,
        5,
    ));
    let train: Vec<usize> = (0..n).collect();
    train_node_classifier(
        &model,
        &graph,
        &train,
        &TrainConfig {
            epochs: 200,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let user_idx: Vec<usize> = (0..USERS).collect();
    let acc = revelio::gnn::evaluate_node_accuracy(&model, &graph, &user_idx);
    println!(
        "category prediction accuracy over users: {:.1}%",
        acc * 100.0
    );

    // Explain one user's predicted preference.
    let user = 0usize;
    let sub = khop_subgraph(&graph, user, model.num_layers());
    let instance = Instance::for_prediction(&model, sub.graph.clone(), Target::Node(sub.target));
    println!(
        "\nwhy does the model think user{user} prefers cat{}? (true: cat{}, p = {:.3})",
        instance.class,
        user_pref[user],
        instance.orig_prob()
    );

    let revelio = Revelio::new(RevelioConfig {
        epochs: 200,
        ..Default::default()
    });
    let explanation = revelio.explain(&model, &instance);
    let flows = explanation.flows.expect("flow scores");

    println!("\ntop-8 evidence flows:");
    for (rank, (f, score)) in flows.top_k(8).into_iter().enumerate() {
        let path: Vec<String> = flows
            .index
            .flow_nodes(&instance.mp, f)
            .into_iter()
            .map(|v| node_name(sub.original_node(v)))
            .collect();
        println!("  {:>2}. {}  ({score:+.3})", rank + 1, path.join(" → "));
    }
    println!(
        "\nflows chaining category-{} items into user{user} should dominate.",
        instance.class
    );
}
