//! # revelio
//!
//! A from-scratch Rust reproduction of **REVELIO: Revealing Important
//! Message Flows in Graph Neural Networks** (He, King & Huang, ICDE 2025).
//!
//! REVELIO explains a GNN prediction at the granularity of **message
//! flows** — the length-`L` layer-edge paths along which information travels
//! in an `L`-layer GNN — by learning one mask per flow and transforming the
//! flow masks into per-layer edge masks applied to the message-passing step.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`tensor`] — reverse-mode autodiff engine (dense f32 matrices);
//! * [`graph`] — graph containers, flow enumeration, incidence index;
//! * [`datasets`] — the eight Table III benchmark generators;
//! * [`gnn`] — GCN / GIN / GAT with mask-aware message passing + training;
//! * [`core`] — the REVELIO explainer itself;
//! * [`baselines`] — the nine baseline explainers of the evaluation;
//! * [`eval`] — Fidelity± / AUC metrics and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use revelio::prelude::*;
//!
//! // A toy node-classification graph: two cliques with telltale features.
//! let mut b = Graph::builder(8, 2);
//! for c in 0..2 {
//!     let base = c * 4;
//!     for i in 0..4 {
//!         for j in (i + 1)..4 {
//!             b.undirected_edge(base + i, base + j);
//!         }
//!         b.node_features(base + i, &[1.0 - c as f32, c as f32]);
//!     }
//! }
//! b.node_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]);
//! let g = b.build();
//!
//! // Train a 3-layer GCN.
//! let model = Gnn::new(GnnConfig::standard(
//!     GnnKind::Gcn, Task::NodeClassification, 2, 2, 0,
//! ));
//! let all: Vec<usize> = (0..8).collect();
//! train_node_classifier(&model, &g, &all, &TrainConfig { epochs: 60, ..Default::default() });
//!
//! // Explain the prediction at node 0 with REVELIO.
//! let sub = khop_subgraph(&g, 0, 3);
//! let instance = Instance::for_prediction(&model, sub.graph.clone(), Target::Node(sub.target));
//! let revelio = Revelio::new(RevelioConfig { epochs: 50, ..Default::default() });
//! let explanation = revelio.explain(&model, &instance);
//!
//! let flows = explanation.flows.expect("REVELIO scores message flows");
//! let (best_flow, score) = flows.top_k(1)[0];
//! println!("most important flow: {} (score {score:.3})",
//!          flows.index.flow_string(&instance.mp, best_flow));
//! ```

pub use revelio_baselines as baselines;
pub use revelio_core as core;
pub use revelio_datasets as datasets;
pub use revelio_eval as eval;
pub use revelio_gnn as gnn;
pub use revelio_graph as graph;
pub use revelio_runtime as runtime;
pub use revelio_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use revelio_baselines::{
        DeepLift, FlowX, GnnExplainer, GnnLrp, GradCam, GraphMask, PgExplainer, PgmExplainer,
        SubgraphX,
    };
    pub use revelio_core::{Explainer, Explanation, FlowScores, Objective, Revelio, RevelioConfig};
    pub use revelio_datasets::{by_name, Dataset, GraphDataset, NodeDataset};
    pub use revelio_gnn::{
        train_graph_classifier, train_node_classifier, Gnn, GnnConfig, GnnKind, Instance, ModelZoo,
        Task, TrainConfig,
    };
    pub use revelio_graph::{khop_subgraph, FlowIndex, Graph, MpGraph, Target};
    pub use revelio_runtime::{ExplainJob, Runtime, RuntimeConfig};
    pub use revelio_tensor::Tensor;
}
