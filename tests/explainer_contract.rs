//! Contract tests: every registered explanation method must produce valid,
//! deterministic explanations on both tasks.

use revelio::eval::{make_method, Effort, ALL_METHODS};
use revelio::prelude::*;

fn node_setup() -> (Gnn, Instance) {
    let data = revelio::datasets::tree_cycles(0);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        data.graph.feat_dim(),
        data.num_classes,
        0,
    ));
    train_node_classifier(
        &model,
        &data.graph,
        &data.split.train,
        &TrainConfig {
            epochs: 30,
            ..Default::default()
        },
    );
    // A motif node with a compact 3-hop neighbourhood.
    let sub = khop_subgraph(&data.graph, 511, 3);
    let inst = Instance::for_prediction(&model, sub.graph.clone(), Target::Node(sub.target));
    (model, inst)
}

fn graph_setup() -> (Gnn, Instance) {
    let data = revelio::datasets::mutag_sim(0);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gin,
        Task::GraphClassification,
        7,
        2,
        0,
    ));
    let train: Vec<usize> = data.split.train.iter().copied().take(40).collect();
    train_graph_classifier(
        &model,
        &data.graphs,
        &train,
        &TrainConfig {
            epochs: 6,
            batch_size: 8,
            ..Default::default()
        },
    );
    let g = data.graphs[0].clone();
    let inst = Instance::for_prediction(&model, g, Target::Graph);
    (model, inst)
}

#[test]
fn all_methods_explain_node_instances() {
    let (model, inst) = node_setup();
    for name in ALL_METHODS {
        let explainer = make_method(name, Objective::Factual, Effort::Quick, 0);
        explainer.fit(&model, &[&inst]);
        let exp = explainer.explain(&model, &inst);
        assert_eq!(
            exp.edge_scores.len(),
            inst.graph.num_edges(),
            "{name}: one score per edge"
        );
        assert!(
            exp.edge_scores.iter().all(|s| s.is_finite()),
            "{name}: finite scores"
        );
        // Ranked edges are a permutation.
        let mut ranked = exp.ranked_edges();
        ranked.sort_unstable();
        assert_eq!(ranked, (0..inst.graph.num_edges()).collect::<Vec<_>>());
    }
}

#[test]
fn all_methods_explain_graph_instances() {
    let (model, inst) = graph_setup();
    for name in ALL_METHODS {
        if name == "GNN-LRP" {
            // Supported (GIN) — included below.
        }
        let explainer = make_method(name, Objective::Factual, Effort::Quick, 0);
        explainer.fit(&model, &[&inst]);
        let exp = explainer.explain(&model, &inst);
        assert_eq!(
            exp.edge_scores.len(),
            inst.graph.num_edges(),
            "{name}: one score per edge"
        );
    }
}

#[test]
fn explanations_are_deterministic_given_seed() {
    let (model, inst) = node_setup();
    for name in ALL_METHODS {
        // Group-level methods retrain on fit; create two fresh instances.
        let e1 = make_method(name, Objective::Factual, Effort::Quick, 42);
        e1.fit(&model, &[&inst]);
        let a = e1.explain(&model, &inst);
        let e2 = make_method(name, Objective::Factual, Effort::Quick, 42);
        e2.fit(&model, &[&inst]);
        let b = e2.explain(&model, &inst);
        assert_eq!(a.edge_scores, b.edge_scores, "{name}: nondeterministic");
    }
}

#[test]
fn flow_methods_attach_flow_scores() {
    let (model, inst) = node_setup();
    for name in ["GNN-LRP", "FlowX", "REVELIO"] {
        let explainer = make_method(name, Objective::Factual, Effort::Quick, 0);
        let exp = explainer.explain(&model, &inst);
        let flows = exp.flows.unwrap_or_else(|| panic!("{name}: flow scores"));
        assert!(flows.index.num_flows() > 0);
        assert_eq!(flows.scores.len(), flows.index.num_flows());
        let ls = exp
            .layer_edge_scores
            .unwrap_or_else(|| panic!("{name}: layer-edge scores"));
        assert_eq!(ls.len(), model.num_layers());
    }
}

#[test]
fn counterfactual_mode_flips_learned_methods() {
    let (model, inst) = node_setup();
    for name in ["GNNExplainer", "FlowX", "REVELIO"] {
        let f = make_method(name, Objective::Factual, Effort::Quick, 7).explain(&model, &inst);
        let c =
            make_method(name, Objective::Counterfactual, Effort::Quick, 7).explain(&model, &inst);
        assert_ne!(
            f.edge_scores, c.edge_scores,
            "{name}: objectives should differ"
        );
    }
}
