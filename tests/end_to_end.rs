//! End-to-end integration: dataset → training → explanation → metrics,
//! exercising the full pipeline the harness binaries use.

use revelio::eval::{
    fidelity_minus, fidelity_plus, roc_auc, sample_instances, Effort, SamplingConfig,
};
use revelio::prelude::*;

fn trained_tree_cycles() -> (Gnn, revelio::datasets::Dataset) {
    let data = revelio::datasets::tree_cycles(0);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        data.graph.feat_dim(),
        data.num_classes,
        0,
    ));
    train_node_classifier(
        &model,
        &data.graph,
        &data.split.train,
        &TrainConfig {
            epochs: 200,
            ..Default::default()
        },
    );
    (model, revelio::datasets::Dataset::Node(data))
}

#[test]
fn full_pipeline_tree_cycles_gcn_revelio() {
    let (model, dataset) = trained_tree_cycles();
    let instances = sample_instances(
        &dataset,
        &model,
        &SamplingConfig {
            count: 3,
            only_motif_correct: true,
            ..Default::default()
        },
    );
    assert!(!instances.is_empty(), "sampled at least one motif instance");

    let revelio = Revelio::new(RevelioConfig {
        epochs: 120,
        ..Default::default()
    });
    for e in &instances {
        let exp = revelio.explain(&model, &e.instance);
        assert_eq!(exp.edge_scores.len(), e.instance.graph.num_edges());

        // Fidelity metrics are well defined and bounded.
        let fm = fidelity_minus(&model, &e.instance, &exp, 0.7);
        let fp = fidelity_plus(&model, &e.instance, &exp, 0.7);
        assert!((-1.0..=1.0).contains(&fm));
        assert!((-1.0..=1.0).contains(&fp));

        // AUC against the motif ground truth is computable whenever the
        // subgraph contains both motif and non-motif edges (a target deep
        // inside the motif can legitimately see motif edges only).
        let gt = e.ground_truth.as_ref().expect("motif instance");
        if let Some(auc) = roc_auc(&exp.edge_scores, gt) {
            assert!((0.0..=1.0).contains(&auc));
        }
    }
}

#[test]
fn revelio_beats_random_on_motif_auc() {
    let (model, dataset) = trained_tree_cycles();
    let instances = sample_instances(
        &dataset,
        &model,
        &SamplingConfig {
            count: 6,
            only_motif_correct: true,
            seed: 3,
            ..Default::default()
        },
    );
    assert!(instances.len() >= 3, "need several motif instances");

    let revelio = Revelio::new(RevelioConfig {
        epochs: 150,
        alpha: 0.02,
        ..Default::default()
    });
    let mut aucs = Vec::new();
    for e in &instances {
        let exp = revelio.explain(&model, &e.instance);
        let gt = e.ground_truth.as_ref().expect("motif");
        if let Some(a) = roc_auc(&exp.edge_scores, gt) {
            aucs.push(a);
        }
    }
    let mean = aucs.iter().sum::<f64>() / aucs.len() as f64;
    // The paper reports 0.792 (GCN) on Tree-Cycles; a quick-budget run on a
    // well-trained model should comfortably beat chance.
    assert!(mean > 0.55, "mean AUC {mean} not better than chance");
}

#[test]
fn graph_classification_pipeline_ba2motifs() {
    let data = revelio::datasets::ba_2motifs(0);
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gin,
        Task::GraphClassification,
        10,
        2,
        0,
    ));
    // BA-2motifs sits on a long loss plateau before the structural signal
    // is picked up; the full train split with ~45 epochs gets past it.
    let train: Vec<usize> = data.split.train.clone();
    train_graph_classifier(
        &model,
        &data.graphs,
        &train,
        &TrainConfig {
            epochs: 45,
            batch_size: 32,
            weight_decay: 0.0,
            ..Default::default()
        },
    );
    let acc = revelio::gnn::evaluate_graph_accuracy(&model, &data.graphs, &train);
    assert!(acc > 0.7, "GIN failed to learn BA-2motifs: {acc}");

    let dataset = revelio::datasets::Dataset::Graph(data);
    let instances = sample_instances(
        &dataset,
        &model,
        &SamplingConfig {
            count: 2,
            only_motif_correct: true,
            ..Default::default()
        },
    );
    let revelio = Revelio::new(RevelioConfig {
        epochs: 80,
        ..Default::default()
    });
    for e in &instances {
        let exp = revelio.explain(&model, &e.instance);
        let flows = exp.flows.expect("flow scores");
        assert!(flows.index.num_flows() > 0);
        assert_eq!(flows.scores.len(), flows.index.num_flows());
    }
}

#[test]
fn effort_enum_is_exported() {
    // Smoke-check the eval surface the binaries rely on.
    assert_ne!(Effort::Quick, Effort::Paper);
}
