//! Failure-injection and edge-case tests: corrupt caches, degenerate
//! graphs, and boundary inputs must fail loudly or degrade gracefully.

#![allow(clippy::unwrap_used)]

use revelio::prelude::*;

#[test]
fn corrupt_model_zoo_entry_triggers_retrain() {
    let dir = std::env::temp_dir().join(format!("revelio_corrupt_zoo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir);
    let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 2, 2, 0);

    // Write garbage where the cache entry lives.
    std::fs::write(dir.join("broken.json"), b"{not json").unwrap();
    assert!(zoo.load("broken", &cfg).is_none());

    // get_or_train recovers by retraining.
    let mut trained = false;
    let _ = zoo.get_or_train("broken", cfg.clone(), |_| trained = true);
    assert!(trained, "corrupt cache entry must trigger retraining");
    assert!(zoo.load("broken", &cfg).is_some(), "recovered entry loads");
}

#[test]
fn truncated_state_dict_is_rejected() {
    let dir = std::env::temp_dir().join(format!("revelio_trunc_zoo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir);
    let cfg = GnnConfig::standard(GnnKind::Gcn, Task::NodeClassification, 2, 2, 0);
    let model = Gnn::new(cfg.clone());
    zoo.save("m", &model);

    // Corrupt: drop the last parameter buffer but keep valid JSON + config.
    // The zoo writes `..."params":[[...],...,[...]]}`, so cutting at the last
    // `,[` removes exactly one buffer.
    let path = dir.join("m.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text
        .rfind(",[")
        .expect("model has multiple parameter buffers");
    std::fs::write(&path, format!("{}]}}", &text[..cut])).unwrap();
    assert!(
        zoo.load("m", &cfg).is_none(),
        "short state dict must not load"
    );
}

#[test]
fn isolated_target_node_still_explainable() {
    // A graph where the target has no in-edges at all: the message-passing
    // view still has its self-loop, so flows exist and REVELIO runs.
    let mut b = Graph::builder(3, 2);
    b.edge(1, 2); // unrelated edge; node 0 isolated
    for v in 0..3 {
        b.node_features(v, &[1.0, v as f32]);
    }
    let g = b.build();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        2,
        2,
        1,
    ));
    let inst = Instance::for_prediction(&model, g, Target::Node(0));
    let exp = Revelio::new(RevelioConfig {
        epochs: 10,
        ..Default::default()
    })
    .explain(&model, &inst);
    let flows = exp.flows.expect("self-loop flows exist");
    // Only the 0→0→0→0 self-loop chain reaches the isolated target.
    assert_eq!(flows.index.num_flows(), 1);
    assert_eq!(exp.edge_scores.len(), 1);
}

#[test]
fn single_node_graph_classification() {
    let mut b = Graph::builder(1, 2);
    b.node_features(0, &[1.0, 0.5]);
    b.graph_label(0);
    let g = b.build();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gin,
        Task::GraphClassification,
        2,
        2,
        2,
    ));
    let probs = model.predict_probs(&g, Target::Graph);
    assert_eq!(probs.len(), 2);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
}

#[test]
#[should_panic(expected = "out of range")]
fn with_edges_rejects_bad_edge_id() {
    let mut b = Graph::builder(2, 1);
    b.edge(0, 1);
    let g = b.build();
    let _ = g.with_edges(&[7]);
}

#[test]
fn zero_sparsity_perturbation_is_identity() {
    use revelio::eval::perturbed_probability;
    let mut b = Graph::builder(3, 2);
    b.undirected_edge(0, 1).undirected_edge(1, 2);
    for v in 0..3 {
        b.node_features(v, &[1.0, v as f32]);
    }
    let g = b.build();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        2,
        2,
        3,
    ));
    let inst = Instance::for_prediction(&model, g, Target::Node(1));
    let all: Vec<usize> = (0..inst.graph.num_edges()).collect();
    let p = perturbed_probability(&model, &inst, &all);
    assert!((p - inst.orig_prob()).abs() < 1e-6);
}

#[test]
fn explainers_handle_two_node_graphs() {
    use revelio::eval::{make_method, Effort, ALL_METHODS};
    let mut b = Graph::builder(2, 2);
    b.undirected_edge(0, 1);
    b.node_features(0, &[1.0, 0.0]);
    b.node_features(1, &[0.0, 1.0]);
    let g = b.build();
    let model = Gnn::new(GnnConfig::standard(
        GnnKind::Gcn,
        Task::NodeClassification,
        2,
        2,
        4,
    ));
    let inst = Instance::for_prediction(&model, g, Target::Node(0));
    for name in ALL_METHODS {
        let e = make_method(name, Objective::Factual, Effort::Quick, 0);
        e.fit(&model, &[&inst]);
        let exp = e.explain(&model, &inst);
        assert_eq!(exp.edge_scores.len(), 2, "{name}");
    }
}
